package tree

import (
	"fmt"
	"sort"
	"strings"

	"pag/internal/ag"
)

// Fragment is one separately evaluated piece of a decomposed parse
// tree. Fragment 0 is the root fragment (it contains the tree root);
// every other fragment hangs off a remote leaf of its parent fragment.
// Fragments form the process tree of paper Figures 6–7.
type Fragment struct {
	ID     int
	Parent int // parent fragment ID; -1 for the root fragment
	Root   *Node
}

// Decomposition is the result of splitting a parse tree.
type Decomposition struct {
	Frags []*Fragment

	// children[id] lists the fragments directly below fragment id, in
	// ID order. Built once at decompose time so the splice and fleet
	// paths never re-scan the fragment list per lookup.
	children [][]int
}

// NumFragments returns the number of fragments.
func (d *Decomposition) NumFragments() int { return len(d.Frags) }

// Children returns the IDs of the fragments directly below fragment
// id, in ID order. For decompositions produced by Decompose the index
// is prebuilt (O(1) per call); hand-assembled values fall back to a
// scan.
func (d *Decomposition) Children(id int) []int {
	if d.children != nil {
		return d.children[id]
	}
	var out []int
	for _, f := range d.Frags {
		if f.Parent == id {
			out = append(out, f.ID)
		}
	}
	return out
}

// buildChildren populates the child index from the Parent links.
func (d *Decomposition) buildChildren() {
	d.children = make([][]int, len(d.Frags))
	for _, f := range d.Frags {
		if f.Parent >= 0 {
			d.children[f.Parent] = append(d.children[f.Parent], f.ID)
		}
	}
}

// Sizes returns the linearized size of every fragment (after cuts).
func (d *Decomposition) Sizes() []int {
	out := make([]int, len(d.Frags))
	for i, f := range d.Frags {
		out[i] = f.Root.Size()
	}
	return out
}

// Balance returns max/mean of the fragment sizes (1.0 = perfectly
// even); it quantifies the paper's §4.1 observation that the best
// machine count is the one whose decomposition is most even.
// Degenerate decompositions — no fragments at all, or every fragment
// of size zero — have nothing to balance and are defined as perfectly
// even (1.0) rather than dividing by zero.
func (d *Decomposition) Balance() float64 {
	return balanceOf(d.Sizes())
}

// balanceOf is Balance on a raw size slice, separated so degenerate
// inputs are testable directly (Node.Size never reports zero, but
// Balance's contract should not depend on that invariant).
func balanceOf(sizes []int) float64 {
	if len(sizes) == 0 {
		return 1
	}
	max, sum := 0, 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
		sum += s
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(sizes)) / float64(sum)
}

// shallowSize is the linearized size contribution of the node itself,
// excluding children.
func shallowSize(n *Node) int {
	switch {
	case n.Remote:
		return 4
	case n.Sym.Terminal:
		return 3 + len(n.Token)
	default:
		return 2
	}
}

// Planner selects the decomposition policy Decompose applies.
type Planner int

const (
	// PlanSize is the legacy §2.5 policy: purely size-driven cuts at
	// the first split-eligible node once a fragment has accumulated its
	// granularity. The default; byte-identical to historic Decompose.
	PlanSize Planner = iota
	// PlanCost is the grammar-analysis policy: among split-eligible
	// nodes it scores (granularity-weighted size balance) − (cut cost),
	// so chain-shaped programs still split into Figure-7 chains but
	// boundaries implying less cross-fragment attribute traffic win
	// ties.
	PlanCost
)

func (p Planner) String() string {
	switch p {
	case PlanSize:
		return "size"
	case PlanCost:
		return "cost"
	default:
		return fmt.Sprintf("Planner(%d)", int(p))
	}
}

// ParsePlanner maps "size"/"cost" (and "" = size) to a Planner.
func ParsePlanner(s string) (Planner, error) {
	switch s {
	case "", "size":
		return PlanSize, nil
	case "cost":
		return PlanCost, nil
	default:
		return 0, fmt.Errorf("tree: unknown planner %q (want \"size\" or \"cost\")", s)
	}
}

// Decomposition granularity constants, from the paper's §2.5 runtime
// scaling argument: the parser accumulates roughly `granularity`
// linearized bytes per fragment and cuts the remainder off at the next
// split-eligible node.
const (
	// MinGranularity is the smallest usable fragment budget. Below ~8
	// bytes a "fragment" is smaller than the remote-leaf placeholder
	// (4 bytes) plus one interior node that replaces it, so every cut
	// would grow the workload instead of distributing it; Decompose
	// clamps silently (historic behavior), callers that accept user
	// input should validate and reject instead.
	MinGranularity = 8
	// splitFloorDiv scales granularity down to the minimum subtree
	// worth shipping: a subtree under granularity/splitFloorDiv costs
	// more in message traffic (its whole attribute interface crosses
	// the network) than its evaluation saves, per the §2.5 argument
	// that split sizes must scale with the per-message overhead. The
	// grammar's per-symbol MinSplitSize still applies when larger.
	splitFloorDiv = 5
)

// splitFloor is the minimum linearized size of a subtree worth cutting
// at a node with symbol sym, for a given fragment granularity.
func splitFloor(sym *ag.Symbol, granularity int) int {
	floor := sym.MinSplitSize
	if g := granularity / splitFloorDiv; g > floor {
		floor = g
	}
	return floor
}

// cut records one planned decomposition cut: child node of parent
// (parent.Children[idx]) roots a new fragment, removed from fragment
// `from`. Cuts are listed in fragment-ID order (ID = 1 + slice index).
type cut struct {
	parent *Node
	idx    int
	node   *Node
	from   int
}

// sizeCuts runs the legacy size-driven walk and returns the cuts it
// decides, without mutating the tree. rem[f] is the size fragment f
// still retains; a subtree is cut off only while the fragment keeps at
// least one granularity's worth of work for itself, so left-recursive
// declaration and statement lists decompose into a chain of roughly
// granularity-sized pieces (the shape of paper Figure 7). Size caches
// must be populated (root.Size()) before the walk.
func sizeCuts(root *Node, granularity, maxFrags int) []cut {
	rem := []int{root.Size()}
	var cuts []cut
	var walk func(n *Node, frag int)
	walk = func(n *Node, frag int) {
		for i, c := range n.Children {
			if 1+len(cuts) < maxFrags &&
				!c.Remote && !c.Sym.Terminal && c.Sym.Split &&
				c.Size() >= splitFloor(c.Sym, granularity) &&
				rem[frag]-c.Size() >= granularity {
				id := len(rem)
				cuts = append(cuts, cut{parent: n, idx: i, node: c, from: frag})
				rem[frag] -= c.Size()
				rem = append(rem, c.Size())
				walk(c, id)
			} else {
				walk(c, frag)
			}
		}
	}
	walk(root, 0)
	return cuts
}

// costWeight converts a grammar cut cost (messages + waves, see
// ag.CutPlan) into the dimensionless fitness space of costCuts: small
// enough that size balance dominates across clearly different sizes,
// large enough that a few messages decide near-ties.
const costWeight = 0.02

// costCuts runs the cost-aware policy: enumerate every split-eligible
// node, score by (granularity-weighted size balance) − costWeight ×
// (cut cost), and greedily accept in score order subject to the same
// feasibility budget the legacy walk enforces (each fragment that
// loses a subtree retains at least one granularity of work). Returned
// cuts are re-ordered to preorder so fragment IDs keep the legacy
// parent-before-child DFS numbering.
func costCuts(root *Node, granularity, maxFrags int, costOf func(*ag.Symbol) int) []cut {
	// Candidates are appended in DFS order, so a candidate's slice
	// index doubles as its preorder rank (determinism + numbering).
	type cand struct {
		parent *Node
		idx    int
		node   *Node
		anc    []int // candidate-ancestor chain, outermost first
		score  float64
	}
	var cands []cand
	var walk func(n *Node, chain []int)
	walk = func(n *Node, chain []int) {
		for i, c := range n.Children {
			childChain := chain
			if !c.Remote && !c.Sym.Terminal && c.Sym.Split &&
				c.Size() >= splitFloor(c.Sym, granularity) {
				fit := 1 - absF(float64(c.Size()-granularity))/float64(granularity)
				cands = append(cands, cand{
					parent: n, idx: i, node: c,
					anc:   chain,
					score: fit - costWeight*float64(costOf(c.Sym)),
				})
				childChain = append(chain[:len(chain):len(chain)], len(cands)-1)
			}
			walk(c, childChain)
		}
	}
	walk(root, nil)
	if len(cands) == 0 {
		return nil
	}

	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := &cands[order[a]], &cands[order[b]]
		if ca.score != cb.score {
			return ca.score > cb.score
		}
		return order[a] < order[b]
	})

	// Greedy accept with the legacy retention budget. host[c] is the
	// accepted candidate a cut currently hangs under (-1 = the root
	// fragment); retained[h] is the linearized size host h keeps after
	// its accepted cuts are removed.
	accepted := make([]bool, len(cands))
	host := make([]int, len(cands))
	retained := map[int]int{-1: root.Size()}
	var acceptedList []int
	for _, ci := range order {
		if 1+len(acceptedList) >= maxFrags {
			break
		}
		c := &cands[ci]
		// Nearest accepted ancestor.
		h := -1
		for k := len(c.anc) - 1; k >= 0; k-- {
			if accepted[c.anc[k]] {
				h = c.anc[k]
				break
			}
		}
		// Accepted cuts currently hosted by h that live inside c's
		// subtree re-host to c when c is accepted.
		var moved, movedSize int
		for _, ai := range acceptedList {
			if host[ai] == h && hasAncestor(cands[ai].anc, ci) {
				moved++
				movedSize += cands[ai].node.Size()
			}
		}
		newRetC := c.node.Size() - movedSize
		newRetH := retained[h] - c.node.Size() + movedSize
		floorC := splitFloor(c.node.Sym, granularity)
		if moved > 0 {
			// c itself now loses subtrees; the legacy invariant says a
			// fragment that sheds work keeps a granularity's worth.
			floorC = granularity
		}
		if newRetH < granularity || newRetC < floorC {
			continue
		}
		accepted[ci] = true
		host[ci] = h
		retained[h] = newRetH
		retained[ci] = newRetC
		for _, ai := range acceptedList {
			if host[ai] == h && hasAncestor(cands[ai].anc, ci) {
				host[ai] = ci
			}
		}
		acceptedList = append(acceptedList, ci)
	}
	if len(acceptedList) == 0 {
		return nil
	}

	// Number fragments in preorder (parent-before-child, matching the
	// legacy DFS numbering) and resolve hosts to fragment IDs.
	sort.Ints(acceptedList)
	fragID := map[int]int{-1: 0}
	for i, ci := range acceptedList {
		fragID[ci] = i + 1
	}
	cuts := make([]cut, len(acceptedList))
	for i, ci := range acceptedList {
		c := &cands[ci]
		cuts[i] = cut{parent: c.parent, idx: c.idx, node: c.node, from: fragID[host[ci]]}
	}
	return cuts
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// hasAncestor reports whether candidate index anc appears in chain.
func hasAncestor(chain []int, anc int) bool {
	for _, a := range chain {
		if a == anc {
			return true
		}
	}
	return false
}

// Decompose splits the tree rooted at root into at most maxFrags
// fragments by cutting at split-eligible nonterminals (the `split`
// declarations of the grammar) under the legacy PlanSize policy.
// granularity is the target fragment size in linearized bytes — the
// parser's runtime scaling argument of paper §2.5: a fragment
// accumulates roughly granularity bytes and the remainder is cut off
// into a new fragment at the next eligible node. Cut subtrees must
// also meet the grammar's per-symbol MinSplitSize.
//
// The tree is mutated: cut subtrees are replaced by remote leaves.
// Decompose(root, _, 1) performs no cuts.
func Decompose(root *Node, granularity, maxFrags int) *Decomposition {
	return DecomposeWith(root, granularity, maxFrags, PlanSize, nil)
}

// DecomposeWith is Decompose with an explicit policy. PlanSize ignores
// costOf and reproduces the historic byte-identical decomposition.
// PlanCost scores split-eligible nodes by size balance minus the
// grammar cut cost (costOf, typically ag.CutPlan.CostOf); a nil costOf
// falls back to PlanSize.
func DecomposeWith(root *Node, granularity, maxFrags int, planner Planner, costOf func(*ag.Symbol) int) *Decomposition {
	d := &Decomposition{}
	d.Frags = append(d.Frags, &Fragment{ID: 0, Parent: -1, Root: root})
	if maxFrags <= 1 {
		d.buildChildren()
		return d
	}
	root.Size() // populate size caches before any cuts
	if granularity < MinGranularity {
		granularity = MinGranularity
	}
	var cuts []cut
	if planner == PlanCost && costOf != nil {
		cuts = costCuts(root, granularity, maxFrags, costOf)
	} else {
		cuts = sizeCuts(root, granularity, maxFrags)
	}
	for _, c := range cuts {
		f := &Fragment{ID: len(d.Frags), Parent: c.from, Root: c.node}
		d.Frags = append(d.Frags, f)
		c.parent.Children[c.idx] = newRemote(c.node.Sym, f.ID)
	}
	// Cuts invalidate cached sizes (remote leaves are smaller than the
	// subtrees they replace); recompute per fragment.
	for _, f := range d.Frags {
		f.Root.invalidateSizes()
		f.Root.Size()
	}
	d.buildChildren()
	return d
}

// SimulateCuts reports the subtree roots the given policy would cut,
// without mutating the tree: the dry-run twin of DecomposeWith,
// sharing its walk so the answer is exactly the set of fragments 1..n
// a real decomposition would produce. Callers use it to compare
// planned message traffic across policies.
func SimulateCuts(root *Node, granularity, maxFrags int, planner Planner, costOf func(*ag.Symbol) int) []*Node {
	if maxFrags <= 1 {
		return nil
	}
	root.Size()
	if granularity < MinGranularity {
		granularity = MinGranularity
	}
	var cuts []cut
	if planner == PlanCost && costOf != nil {
		cuts = costCuts(root, granularity, maxFrags, costOf)
	} else {
		cuts = sizeCuts(root, granularity, maxFrags)
	}
	out := make([]*Node, len(cuts))
	for i, c := range cuts {
		out[i] = c.node
	}
	return out
}

// GranularityFor picks a split threshold aimed at producing
// approximately machines fragments of roughly equal size: the total
// linearized size divided by the machine count (clamped to a small
// floor so pathological inputs are not shredded).
func GranularityFor(root *Node, machines int) int {
	if machines <= 1 {
		return root.Size() + 1
	}
	g := root.Size() / machines
	if g < 16 {
		g = 16
	}
	return g
}

// Describe renders the process tree with fragment sizes, labelling
// fragments a, b, c, ... in ID order as in paper Figure 7.
func (d *Decomposition) Describe() string {
	var b strings.Builder
	var rec func(id, depth int)
	rec = func(id, depth int) {
		f := d.Frags[id]
		fmt.Fprintf(&b, "%s%c: %s (%d bytes)\n",
			strings.Repeat("  ", depth), 'a'+id, f.Root.Sym.Name, f.Root.Size())
		for _, c := range d.Children(id) {
			rec(c, depth+1)
		}
	}
	rec(0, 0)
	return b.String()
}
