package tree

import (
	"fmt"
	"strings"
)

// Fragment is one separately evaluated piece of a decomposed parse
// tree. Fragment 0 is the root fragment (it contains the tree root);
// every other fragment hangs off a remote leaf of its parent fragment.
// Fragments form the process tree of paper Figures 6–7.
type Fragment struct {
	ID     int
	Parent int // parent fragment ID; -1 for the root fragment
	Root   *Node
}

// Decomposition is the result of splitting a parse tree.
type Decomposition struct {
	Frags []*Fragment
}

// NumFragments returns the number of fragments.
func (d *Decomposition) NumFragments() int { return len(d.Frags) }

// Children returns the IDs of the fragments directly below fragment id.
func (d *Decomposition) Children(id int) []int {
	var out []int
	for _, f := range d.Frags {
		if f.Parent == id {
			out = append(out, f.ID)
		}
	}
	return out
}

// Sizes returns the linearized size of every fragment (after cuts).
func (d *Decomposition) Sizes() []int {
	out := make([]int, len(d.Frags))
	for i, f := range d.Frags {
		out[i] = f.Root.Size()
	}
	return out
}

// Balance returns max/mean of the fragment sizes (1.0 = perfectly
// even); it quantifies the paper's §4.1 observation that the best
// machine count is the one whose decomposition is most even.
// Degenerate decompositions — no fragments at all, or every fragment
// of size zero — have nothing to balance and are defined as perfectly
// even (1.0) rather than dividing by zero.
func (d *Decomposition) Balance() float64 {
	return balanceOf(d.Sizes())
}

// balanceOf is Balance on a raw size slice, separated so degenerate
// inputs are testable directly (Node.Size never reports zero, but
// Balance's contract should not depend on that invariant).
func balanceOf(sizes []int) float64 {
	if len(sizes) == 0 {
		return 1
	}
	max, sum := 0, 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
		sum += s
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(sizes)) / float64(sum)
}

// shallowSize is the linearized size contribution of the node itself,
// excluding children.
func shallowSize(n *Node) int {
	switch {
	case n.Remote:
		return 4
	case n.Sym.Terminal:
		return 3 + len(n.Token)
	default:
		return 2
	}
}

// Decompose splits the tree rooted at root into at most maxFrags
// fragments by cutting at split-eligible nonterminals (the `split`
// declarations of the grammar). granularity is the target fragment
// size in linearized bytes — the parser's runtime scaling argument of
// paper §2.5: a fragment accumulates roughly granularity bytes and the
// remainder is cut off into a new fragment at the next eligible node.
// Cut subtrees must also meet the grammar's per-symbol MinSplitSize.
//
// The tree is mutated: cut subtrees are replaced by remote leaves.
// Decompose(root, _, 1) performs no cuts.
func Decompose(root *Node, granularity, maxFrags int) *Decomposition {
	d := &Decomposition{}
	d.Frags = append(d.Frags, &Fragment{ID: 0, Parent: -1, Root: root})
	if maxFrags <= 1 {
		return d
	}
	root.Size() // populate size caches before any cuts
	if granularity < 8 {
		granularity = 8
	}
	// rem[f] is the size fragment f still retains; a subtree is cut off
	// only while the fragment keeps at least one granularity's worth of
	// work for itself, so left-recursive declaration and statement
	// lists decompose into a chain of roughly granularity-sized pieces
	// (the shape of paper Figure 7).
	rem := []int{root.Size()}
	var walk func(n *Node, frag int)
	walk = func(n *Node, frag int) {
		for i, c := range n.Children {
			floor := c.Sym.MinSplitSize
			if g := granularity / 5; g > floor {
				floor = g
			}
			if len(d.Frags) < maxFrags &&
				!c.Remote && !c.Sym.Terminal && c.Sym.Split &&
				c.Size() >= floor && rem[frag]-c.Size() >= granularity {
				f := &Fragment{ID: len(d.Frags), Parent: frag, Root: c}
				d.Frags = append(d.Frags, f)
				rem[frag] -= c.Size()
				rem = append(rem, c.Size())
				n.Children[i] = newRemote(c.Sym, f.ID)
				walk(c, f.ID)
			} else {
				walk(c, frag)
			}
		}
	}
	walk(root, 0)
	// Cuts invalidate cached sizes (remote leaves are smaller than the
	// subtrees they replace); recompute per fragment.
	for _, f := range d.Frags {
		f.Root.invalidateSizes()
		f.Root.Size()
	}
	return d
}

// GranularityFor picks a split threshold aimed at producing
// approximately machines fragments of roughly equal size: the total
// linearized size divided by the machine count (clamped to a small
// floor so pathological inputs are not shredded).
func GranularityFor(root *Node, machines int) int {
	if machines <= 1 {
		return root.Size() + 1
	}
	g := root.Size() / machines
	if g < 16 {
		g = 16
	}
	return g
}

// Describe renders the process tree with fragment sizes, labelling
// fragments a, b, c, ... in ID order as in paper Figure 7.
func (d *Decomposition) Describe() string {
	var b strings.Builder
	var rec func(id, depth int)
	rec = func(id, depth int) {
		f := d.Frags[id]
		fmt.Fprintf(&b, "%s%c: %s (%d bytes)\n",
			strings.Repeat("  ", depth), 'a'+id, f.Root.Sym.Name, f.Root.Size())
		for _, c := range d.Children(id) {
			rec(c, depth+1)
		}
	}
	rec(0, 0)
	return b.String()
}
