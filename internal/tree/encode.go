package tree

import (
	"encoding/binary"
	"fmt"

	"pag/internal/ag"
)

// TerminalAttrs recomputes the scanner-supplied attribute values of a
// terminal from its lexeme; it is the language front end's lexical
// value function, needed when a linearized subtree is reconstructed on
// another machine.
type TerminalAttrs func(sym *ag.Symbol, token string) ([]ag.Value, error)

const (
	tagInterior byte = 1
	tagTerminal byte = 2
	tagRemote   byte = 3
)

// Encode linearizes the subtree for transmission over the network
// ("the linearized form received over the network", paper §2.4).
// Attribute values are not included: the receiving evaluator recomputes
// them; only scanner lexemes travel with the tree.
func Encode(n *Node) []byte {
	var buf []byte
	var enc func(n *Node)
	enc = func(n *Node) {
		switch {
		case n.Remote:
			buf = append(buf, tagRemote)
			buf = binary.AppendUvarint(buf, uint64(n.Sym.Index))
			buf = binary.AppendUvarint(buf, uint64(n.RemoteID))
		case n.Sym.Terminal:
			buf = append(buf, tagTerminal)
			buf = binary.AppendUvarint(buf, uint64(n.Sym.Index))
			buf = binary.AppendUvarint(buf, uint64(len(n.Token)))
			buf = append(buf, n.Token...)
		default:
			buf = append(buf, tagInterior)
			buf = binary.AppendUvarint(buf, uint64(n.Prod.Index))
			for _, c := range n.Children {
				enc(c)
			}
		}
	}
	enc(n)
	return buf
}

// Decode reconstructs a subtree from its linearized form. lex supplies
// terminal attribute values; a nil lex leaves terminal attributes zero.
func Decode(g *ag.Grammar, data []byte, lex TerminalAttrs) (*Node, error) {
	pos := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("tree: truncated varint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	var dec func() (*Node, error)
	dec = func() (*Node, error) {
		if pos >= len(data) {
			return nil, fmt.Errorf("tree: truncated encoding at offset %d", pos)
		}
		tag := data[pos]
		pos++
		switch tag {
		case tagRemote:
			si, err := uvarint()
			if err != nil {
				return nil, err
			}
			id, err := uvarint()
			if err != nil {
				return nil, err
			}
			if si >= uint64(len(g.Symbols)) {
				return nil, fmt.Errorf("tree: symbol index %d out of range", si)
			}
			return newRemote(g.Symbols[si], int(id)), nil
		case tagTerminal:
			si, err := uvarint()
			if err != nil {
				return nil, err
			}
			ln, err := uvarint()
			if err != nil {
				return nil, err
			}
			if si >= uint64(len(g.Symbols)) {
				return nil, fmt.Errorf("tree: symbol index %d out of range", si)
			}
			if pos+int(ln) > len(data) {
				return nil, fmt.Errorf("tree: truncated token at offset %d", pos)
			}
			sym := g.Symbols[si]
			tok := string(data[pos : pos+int(ln)])
			pos += int(ln)
			n := NewTerminal(sym, tok)
			if lex != nil {
				vals, err := lex(sym, tok)
				if err != nil {
					return nil, fmt.Errorf("tree: terminal %s %q: %w", sym, tok, err)
				}
				copy(n.Attrs, vals)
			}
			return n, nil
		case tagInterior:
			pi, err := uvarint()
			if err != nil {
				return nil, err
			}
			if pi >= uint64(len(g.Prods)) {
				return nil, fmt.Errorf("tree: production index %d out of range", pi)
			}
			p := g.Prods[pi]
			children := make([]*Node, len(p.RHS))
			for i := range children {
				c, err := dec()
				if err != nil {
					return nil, err
				}
				children[i] = c
			}
			return New(p, children...), nil
		default:
			return nil, fmt.Errorf("tree: bad tag %d at offset %d", tag, pos-1)
		}
	}
	n, err := dec()
	if err != nil {
		return nil, err
	}
	if pos != len(data) {
		return nil, fmt.Errorf("tree: %d trailing bytes", len(data)-pos)
	}
	return n, nil
}
