// Package tree implements attributed parse trees for the parallel
// attribute grammar evaluator: construction, linearization for network
// transmission, decomposition into separately evaluated subtrees (the
// parser-side splitting of paper §2.1/§2.5), and spine marking for the
// combined evaluator (paper §2.4).
package tree

import (
	"fmt"

	"pag/internal/ag"
)

// Node is one parse-tree node. Exactly one of the following holds:
//
//   - interior node: Prod != nil, Children matches Prod.RHS;
//   - terminal leaf: Sym.Terminal, Token holds the lexeme and Attrs the
//     scanner-supplied attribute values;
//   - remote leaf: Remote is true; the node stands for a subtree that
//     is evaluated by another machine (fragment RemoteID). Its
//     synthesized attributes arrive over the network; its inherited
//     attributes are computed locally and shipped out.
type Node struct {
	Sym      *ag.Symbol
	Prod     *ag.Production
	Children []*Node
	Attrs    []ag.Value
	Token    string

	Remote   bool
	RemoteID int

	// Seq is evaluator workspace: the 1-based registration number of
	// the node within the evaluator that owns its fragment (0 =
	// unregistered). Evaluators use it to index flat, arena-backed
	// instance tables instead of per-node maps; fragments are disjoint
	// and an evaluator validates the number before trusting it, so no
	// coordination is needed.
	Seq int32

	size int // cached linearized size, bytes
}

// New creates an interior node for production p with the given
// children. The child count must match the production arity.
func New(p *ag.Production, children ...*Node) *Node {
	if len(children) != len(p.RHS) {
		panic(fmt.Sprintf("tree: production %s expects %d children, got %d", p, len(p.RHS), len(children)))
	}
	for i, c := range children {
		if c.Sym != p.RHS[i] {
			panic(fmt.Sprintf("tree: production %s child %d: want %s, got %s", p, i, p.RHS[i], c.Sym))
		}
	}
	return &Node{
		Sym:      p.LHS,
		Prod:     p,
		Children: children,
		Attrs:    make([]ag.Value, len(p.LHS.Attrs)),
	}
}

// NewTerminal creates a terminal leaf with scanner-supplied attribute
// values (in attribute declaration order).
func NewTerminal(sym *ag.Symbol, token string, attrs ...ag.Value) *Node {
	if !sym.Terminal {
		panic(fmt.Sprintf("tree: NewTerminal on nonterminal %s", sym))
	}
	vals := make([]ag.Value, len(sym.Attrs))
	copy(vals, attrs)
	return &Node{Sym: sym, Token: token, Attrs: vals}
}

// newRemote creates a remote-leaf placeholder for fragment id.
func newRemote(sym *ag.Symbol, id int) *Node {
	return &Node{Sym: sym, Remote: true, RemoteID: id, Attrs: make([]ag.Value, len(sym.Attrs))}
}

// Size returns the linearized size of the subtree in bytes (the metric
// the parser compares against the grammar's minimum split sizes). The
// value is computed once and cached.
func (n *Node) Size() int {
	if n.size == 0 {
		s := 2 // node tag + production/symbol index
		switch {
		case n.Remote:
			s = 4
		case n.Sym.Terminal:
			s = 3 + len(n.Token)
		default:
			for _, c := range n.Children {
				s += c.Size()
			}
		}
		n.size = s
	}
	return n.size
}

// invalidateSizes clears cached sizes in the subtree.
func (n *Node) invalidateSizes() {
	n.size = 0
	for _, c := range n.Children {
		c.invalidateSizes()
	}
}

// Count returns the number of nodes in the subtree.
func (n *Node) Count() int {
	c := 1
	for _, ch := range n.Children {
		c += ch.Count()
	}
	return c
}

// CountAttrs returns the number of attribute instances in the subtree
// (remote leaves contribute their interface attributes).
func (n *Node) CountAttrs() int {
	c := len(n.Attrs)
	for _, ch := range n.Children {
		c += ch.CountAttrs()
	}
	return c
}

// Walk calls f on every node of the subtree in preorder.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Clone deep-copies the subtree (attribute values are shared; they are
// immutable by the purity requirement on semantic rules). The copy is
// slab-allocated: one node slab, one attribute-value slab and one
// child-pointer slab for the whole subtree — three allocations instead
// of two per node — with every node's Attrs slice carved (full-cap) out
// of the flat value slab. This is the arena-backed attribute table of
// the parallel runtime: parallel.Run clones the job tree on every
// compilation, so clone cost is evaluation hot-path cost.
func (n *Node) Clone() *Node {
	var nodes, attrs int
	var count func(*Node)
	count = func(m *Node) {
		nodes++
		attrs += len(m.Attrs)
		for _, c := range m.Children {
			count(c)
		}
	}
	count(n)

	slab := make([]Node, nodes)
	vals := make([]ag.Value, attrs)
	var kids []*Node
	if nodes > 1 {
		kids = make([]*Node, nodes-1)
	}
	var ni, vi, ki int
	var rec func(src *Node) *Node
	rec = func(src *Node) *Node {
		dst := &slab[ni]
		ni++
		dst.Sym = src.Sym
		dst.Prod = src.Prod
		dst.Token = src.Token
		dst.Remote = src.Remote
		dst.RemoteID = src.RemoteID
		if na := len(src.Attrs); na > 0 {
			dst.Attrs = vals[vi : vi+na : vi+na]
			vi += na
			copy(dst.Attrs, src.Attrs)
		}
		if nc := len(src.Children); nc > 0 {
			dst.Children = kids[ki : ki+nc : ki+nc]
			ki += nc
			for i, c := range src.Children {
				dst.Children[i] = rec(c)
			}
		}
		return dst
	}
	return rec(n)
}

// RemoteLeaves returns the remote leaves of the subtree in tree
// (preorder) order — the fragment's interface to the subtrees evaluated
// elsewhere. Runtimes use it to route attribute messages by fragment id
// deterministically.
func RemoteLeaves(root *Node) []*Node {
	var out []*Node
	root.Walk(func(n *Node) {
		if n.Remote {
			out = append(out, n)
		}
	})
	return out
}

// Spine returns the set of nodes lying on a path from root to some
// remote leaf, including root itself if any remote leaf exists. These
// are exactly the nodes the combined evaluator processes dynamically
// (paper §2.4); all other nodes are evaluated by static visits.
func Spine(root *Node) map[*Node]bool {
	spine := make(map[*Node]bool)
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n.Remote {
			return true
		}
		onSpine := false
		for _, c := range n.Children {
			if walk(c) {
				onSpine = true
			}
		}
		if onSpine {
			spine[n] = true
		}
		return onSpine
	}
	walk(root)
	return spine
}

// Equal reports structural equality of two subtrees including attribute
// values compared with ==(comparable) or fmt-formatting fallback.
func Equal(a, b *Node) bool {
	if a.Sym != b.Sym || a.Prod != b.Prod || a.Token != b.Token ||
		a.Remote != b.Remote || a.RemoteID != b.RemoteID ||
		len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if fmt.Sprint(a.Attrs[i]) != fmt.Sprint(b.Attrs[i]) {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
