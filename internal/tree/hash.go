package tree

// Digests are content addresses: the encoding below must be
// bit-identical across runs and machines (paglint/determinism).
//paglint:deterministic

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
)

// Digest is a canonical structural content address of a subtree.
// SHA-256 deliberately: fragment-cache keys are built from digests of
// arbitrary user sources, and a collision would silently serve one
// job's cached output as another's — the address must be
// collision-resistant, not merely well-distributed.
type Digest [sha256.Size]byte

// Hash returns the canonical content address of the subtree: a digest
// over everything the parser contributes to a fragment — node kinds,
// symbol and production identities, terminal tokens and
// scanner-supplied terminal attribute values, and the shape of remote
// leaves (symbol plus fragment id). Attribute values of nonterminals
// are evaluation *outputs* and are deliberately excluded, so a tree
// hashes the same before and after evaluation.
//
// Two structurally identical subtrees (same grammar) always hash
// equal; the encoding is length-prefixed and kind-tagged, so subtrees
// that differ in any token, symbol, production or shape hash
// differently. Symbols and productions are identified by their
// grammar-local indices, so digests are only comparable between trees
// of the same grammar — cache keys must carry the grammar identity
// alongside the digest.
func Hash(n *Node) Digest {
	h := newHasher()
	h.node(n)
	d := h.sum()
	h.release()
	return d
}

// Digests returns the content address of every fragment's post-cut
// subtree, in fragment order. A fragment's digest covers its own
// symbols, tokens and remote-leaf shape (including the fragment ids its
// remote leaves point at), but nothing outside the fragment — so an
// edit elsewhere in the tree leaves the digest unchanged as long as the
// cut placement (and hence the fragment numbering) is stable. This is
// the per-fragment half of the incremental cache key.
func (d *Decomposition) Digests() []Digest {
	out := make([]Digest, len(d.Frags))
	for i, f := range d.Frags {
		out[i] = Hash(f.Root)
	}
	return out
}

// CombineDigests folds a digest sequence into one digest (order
// matters: fragment 0's digest first). CombineDigests(d.Digests()) is
// the content address of a whole decomposition — and, because the
// fragments plus their remote-leaf structure reassemble into exactly
// one tree, of the whole job tree; keeping the two steps separate
// lets a caller address each fragment and the whole job while hashing
// every subtree once.
func CombineDigests(digs []Digest) Digest {
	h := newHasher()
	for i := range digs {
		h.write(digs[i][:])
	}
	d := h.sum()
	h.release()
	return d
}

// hasher accumulates the canonical encoding in a local buffer and
// feeds the SHA-256 state in large chunks: digests are computed on
// every cache lookup's path, and a state update per 8-byte field costs
// more than the hashing itself.
type hasher struct {
	w   hash.Hash
	buf []byte
}

const hasherChunk = 4096

// hashers recycles hasher states: digests are computed per fragment on
// every cache lookup, and the 4KiB batching buffer is the kind of
// allocation that turns into GC pressure on a busy pool.
var hashers = sync.Pool{New: func() any {
	return &hasher{w: sha256.New(), buf: make([]byte, 0, hasherChunk)}
}}

func newHasher() *hasher {
	h := hashers.Get().(*hasher)
	h.w.Reset()
	h.buf = h.buf[:0]
	return h
}

func (h *hasher) release() { hashers.Put(h) }

func (h *hasher) drain() {
	if len(h.buf) > 0 {
		h.w.Write(h.buf) //nolint:errcheck // hash.Hash never errors
		h.buf = h.buf[:0]
	}
}

func (h *hasher) room(n int) {
	if len(h.buf)+n > cap(h.buf) {
		h.drain()
	}
}

func (h *hasher) byte(b byte) {
	h.room(1)
	h.buf = append(h.buf, b)
}

func (h *hasher) int(v int) {
	h.room(8)
	h.buf = binary.LittleEndian.AppendUint64(h.buf, uint64(v))
}

func (h *hasher) string(s string) {
	h.int(len(s))
	if len(s) >= hasherChunk {
		h.drain()
		h.w.Write([]byte(s)) //nolint:errcheck // hash.Hash never errors
		return
	}
	h.room(len(s))
	h.buf = append(h.buf, s...)
}

func (h *hasher) write(p []byte) {
	if len(p) >= hasherChunk {
		h.drain()
		h.w.Write(p) //nolint:errcheck // hash.Hash never errors
		return
	}
	h.room(len(p))
	h.buf = append(h.buf, p...)
}

func (h *hasher) sum() Digest {
	h.drain()
	var d Digest
	h.w.Sum(d[:0])
	return d
}

// node mixes one subtree into the hash, kind-tagged with the same
// tagInterior/tagTerminal/tagRemote bytes the wire encoding uses, so
// an interior node can never collide with a terminal or remote leaf of
// identical payload bytes.
func (h *hasher) node(n *Node) {
	switch {
	case n.Remote:
		h.byte(tagRemote)
		h.int(n.Sym.Index)
		h.int(n.RemoteID)
	case n.Sym.Terminal:
		h.byte(tagTerminal)
		h.int(n.Sym.Index)
		h.string(n.Token)
		h.int(len(n.Attrs))
		for _, v := range n.Attrs {
			// Kind-tagged, and length-prefixed where the value is
			// formatted: a formatted value may contain any byte, so only
			// the prefix keeps adjacent values from sliding into each
			// other and colliding. The typed branches cover the scalar
			// attribute values scanners actually produce — hashing is on
			// every cache lookup's path, and fmt boxing there is real
			// cost, not just untidiness.
			switch x := v.(type) {
			case nil:
				h.byte('n')
			case int:
				h.byte('i')
				h.int(x)
			case bool:
				h.byte('b')
				if x {
					h.byte(1)
				} else {
					h.byte(0)
				}
			case string:
				h.byte('s')
				h.string(x)
			default:
				h.byte('?')
				h.string(fmt.Sprint(x))
			}
		}
	default:
		h.byte(tagInterior)
		h.int(n.Prod.Index)
		for _, c := range n.Children {
			h.node(c)
		}
	}
}
