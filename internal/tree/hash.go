package tree

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
)

// Digest is a canonical structural content address of a subtree.
// SHA-256 deliberately: fragment-cache keys are built from digests of
// arbitrary user sources, and a collision would silently serve one
// job's cached output as another's — the address must be
// collision-resistant, not merely well-distributed.
type Digest [sha256.Size]byte

// Hash returns the canonical content address of the subtree: a digest
// over everything the parser contributes to a fragment — node kinds,
// symbol and production identities, terminal tokens and
// scanner-supplied terminal attribute values, and the shape of remote
// leaves (symbol plus fragment id). Attribute values of nonterminals
// are evaluation *outputs* and are deliberately excluded, so a tree
// hashes the same before and after evaluation.
//
// Two structurally identical subtrees (same grammar) always hash
// equal; the encoding is length-prefixed and kind-tagged, so subtrees
// that differ in any token, symbol, production or shape hash
// differently. Symbols and productions are identified by their
// grammar-local indices, so digests are only comparable between trees
// of the same grammar — cache keys must carry the grammar identity
// alongside the digest.
func Hash(n *Node) Digest {
	h := newHasher()
	h.node(n)
	return h.sum()
}

// Hash returns one digest covering every fragment's post-cut subtree
// in fragment order — the content address of the decomposition itself,
// pinning both each fragment's shape and how the cuts were placed.
func (d *Decomposition) Hash() Digest {
	h := newHasher()
	for _, f := range d.Frags {
		dig := Hash(f.Root)
		h.w.Write(dig[:]) //nolint:errcheck // hash.Hash never errors
	}
	return h.sum()
}

type hasher struct {
	w   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{w: sha256.New()} }

func (h *hasher) byte(b byte) {
	h.buf[0] = b
	h.w.Write(h.buf[:1]) //nolint:errcheck // hash.Hash never errors
}

func (h *hasher) int(v int) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.w.Write(h.buf[:]) //nolint:errcheck // hash.Hash never errors
}

func (h *hasher) string(s string) {
	h.int(len(s))
	h.w.Write([]byte(s)) //nolint:errcheck // hash.Hash never errors
}

func (h *hasher) sum() Digest {
	var d Digest
	h.w.Sum(d[:0])
	return d
}

// node mixes one subtree into the hash, kind-tagged with the same
// tagInterior/tagTerminal/tagRemote bytes the wire encoding uses, so
// an interior node can never collide with a terminal or remote leaf of
// identical payload bytes.
func (h *hasher) node(n *Node) {
	switch {
	case n.Remote:
		h.byte(tagRemote)
		h.int(n.Sym.Index)
		h.int(n.RemoteID)
	case n.Sym.Terminal:
		h.byte(tagTerminal)
		h.int(n.Sym.Index)
		h.string(n.Token)
		h.int(len(n.Attrs))
		for _, v := range n.Attrs {
			// Length-prefixed, not separator-joined: a formatted value
			// may contain any byte, so only the prefix keeps adjacent
			// values from sliding into each other and colliding.
			h.string(fmt.Sprint(v))
		}
	default:
		h.byte(tagInterior)
		h.int(n.Prod.Index)
		for _, c := range n.Children {
			h.node(c)
		}
	}
}
