package tree_test

import (
	"fmt"
	"strings"
	"testing"

	"pag/internal/pascal"
	"pag/internal/tree"
	"pag/internal/workload"
)

// fragTokens linearizes one fragment's terminal tokens and remote-leaf
// ids — a decomposition-shape-aware identity that is independent of
// the hash under test, used as the ground truth for which fragments an
// edit touched.
func fragTokens(f *tree.Node) string {
	var b strings.Builder
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		switch {
		case n.Remote:
			fmt.Fprintf(&b, "<R%d>", n.RemoteID)
		case n.Sym.Terminal:
			b.WriteString(n.Token)
			b.WriteByte(' ')
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(f)
	return b.String()
}

// TestFragmentHashStableUnderOutsideEdit is the re-split stability
// property the incremental cache key relies on: editing the source
// OUTSIDE a fragment yields an identical post-cut hash for that
// fragment, across every decomposition width at which the cut
// placement is stable (same fragment count, same parent links, same
// token content per fragment). Equally important is the converse:
// exactly the fragments whose token content changed must change hash.
func TestFragmentHashStableUnderOutsideEdit(t *testing.T) {
	base := workload.Generate(workload.Tiny())
	edits := []struct{ name, old, new string }{
		// Same-length token swaps, so granularity and cut placement
		// cannot move: one in the main statement list, one inside a
		// function body, one in a string constant.
		{"main-operand", "(gtotal - gtotal)", "(gtotal - gcount)"},
		{"func-body", "(p0 - 6)", "(p0 - 7)"},
		{"string-const", "'total '", "'tutal '"},
	}
	l := pascal.MustNew()
	baseJob, err := l.ClusterJob(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edits {
		t.Run(e.name, func(t *testing.T) {
			edited := strings.Replace(base, e.old, e.new, 1)
			if edited == base {
				t.Fatalf("edit target %q not in source", e.old)
			}
			editedJob, err := l.ClusterJob(edited)
			if err != nil {
				t.Fatal(err)
			}
			for width := 2; width <= 8; width++ {
				a := baseJob.Root.Clone()
				b := editedJob.Root.Clone()
				da := tree.Decompose(a, tree.GranularityFor(a, width), width)
				db := tree.Decompose(b, tree.GranularityFor(b, width), width)
				if da.NumFragments() != db.NumFragments() {
					continue // cut placement not stable at this width; no claim
				}
				stable := true
				for i := range da.Frags {
					if da.Frags[i].Parent != db.Frags[i].Parent {
						stable = false
						break
					}
				}
				if !stable {
					continue
				}
				ha, hb := da.Digests(), db.Digests()
				changed := 0
				for i := range da.Frags {
					same := fragTokens(da.Frags[i].Root) == fragTokens(db.Frags[i].Root)
					if same && ha[i] != hb[i] {
						t.Errorf("width %d: fragment %d untouched by edit but hash changed", width, i)
					}
					if !same {
						changed++
						if ha[i] == hb[i] {
							t.Errorf("width %d: fragment %d edited but hash unchanged", width, i)
						}
					}
				}
				if changed == 0 {
					t.Errorf("width %d: edit %s touched no fragment — bad test setup", width, e.name)
				}
				if changed == da.NumFragments() && da.NumFragments() > 1 {
					t.Errorf("width %d: edit %s touched every fragment — nothing left to reuse", width, e.name)
				}
			}
		})
	}
}
