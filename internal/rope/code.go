package rope

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Code is the code-attribute string type of the parallel compiler. It
// unifies local text (Rope), references to text stored at the string
// librarian (Descriptor), and O(1) concatenations of the two (Cat).
// This is the paper's observation (§4.3) that enabling the string
// librarian requires changing only "the implementation of the standard
// string data type used for code attributes".
type Code interface {
	// CodeLen is the length in bytes of the described text.
	CodeLen() int
	walk(text func(s string), handle func(h int32, n int))
}

// CodeLen implements Code for *Rope.
func (r *Rope) CodeLen() int { return r.Len() }

func (r *Rope) walk(text func(string), _ func(int32, int)) {
	r.Leaves(text)
}

// CodeLen implements Code for *Descriptor.
func (d *Descriptor) CodeLen() int { return d.Len() }

func (d *Descriptor) walk(_ func(string), handle func(int32, int)) {
	if d == nil {
		return
	}
	if d.left == nil && d.right == nil {
		handle(d.handle, d.n)
		return
	}
	d.left.walk(nil, handle)
	d.right.walk(nil, handle)
}

// Cat is the O(1) concatenation of two Code values.
type Cat struct {
	left, right Code
	n           int
}

func (c *Cat) CodeLen() int { return c.n }

func (c *Cat) walk(text func(string), handle func(int32, int)) {
	c.left.walk(text, handle)
	c.right.walk(text, handle)
}

// CatCode concatenates Code values in O(1) per operand. Nil and
// zero-length operands are dropped.
func CatCode(cs ...Code) Code {
	var out Code
	for _, c := range cs {
		if c == nil || c.CodeLen() == 0 {
			continue
		}
		if out == nil {
			out = c
			continue
		}
		out = &Cat{left: out, right: c, n: out.CodeLen() + c.CodeLen()}
	}
	return out
}

// Text is shorthand for a literal code snippet.
func Text(s string) Code { return Leaf(s) }

// Textf is shorthand for a formatted code snippet.
func Textf(format string, args ...any) Code {
	return Leaf(fmt.Sprintf(format, args...))
}

// WalkCode traverses the leaves of a Code value left to right, calling
// text for literal runs and handle for librarian references.
func WalkCode(c Code, text func(s string), handle func(h int32, n int)) {
	if c == nil {
		return
	}
	c.walk(text, handle)
}

// FlattenCode resolves a Code value to a plain string; lookup resolves
// librarian handles (nil lookup panics on handles).
func FlattenCode(c Code, lookup func(h int32) string) string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	b.Grow(c.CodeLen())
	WalkCode(c,
		func(s string) { b.WriteString(s) },
		func(h int32, _ int) { b.WriteString(lookup(h)) })
	return b.String()
}

// ShipCodec is implemented by attribute codecs that interact with the
// string librarian: instead of flattening code attributes into the
// wire message, they deposit local text at the librarian (via store)
// and transmit only a descriptor. The cluster runtime detects this
// interface and provides the store/fetch plumbing.
type ShipCodec interface {
	// EncodeShip converts a Code value for transmission. store deposits
	// one run of local text at the librarian and returns its handle, or
	// an error when the caller's handle range is exhausted.
	EncodeShip(store func(text string) (int32, error), v any) ([]byte, error)
	// DecodeShip reconstructs the Code value (as a Descriptor).
	DecodeShip(data []byte) (any, error)
}

// CodeCodec is the standard codec for code attributes.
//
// With Librarian true it implements the paper's optimization: local
// text runs are stored at the librarian once and the wire carries a
// descriptor of a few bytes per run. With Librarian false it is the
// naive implementation the paper warns about: the full code text is
// flattened into every message and re-transmitted at every level of
// the process tree.
type CodeCodec struct {
	Librarian bool
}

// Encode implements ag.Codec for the naive (no-librarian) path: the
// full code text travels in the message. It is used even when Librarian
// is set, because the cluster may run with the librarian disabled for
// the paper's §4.3 comparison; flattening only fails if the value
// already contains librarian handles (impossible in a naive run).
func (c CodeCodec) Encode(v any) ([]byte, error) {
	code, err := asCode(v)
	if err != nil {
		return nil, err
	}
	if code == nil {
		return nil, nil
	}
	var b strings.Builder
	ok := true
	WalkCode(code,
		func(s string) { b.WriteString(s) },
		func(int32, int) { ok = false })
	if !ok {
		return nil, fmt.Errorf("rope: naive codec cannot flatten librarian handles")
	}
	return []byte(b.String()), nil
}

// Decode implements ag.Codec for the naive path.
func (c CodeCodec) Decode(data []byte) (any, error) {
	return Leaf(string(data)), nil
}

// EncodeShip implements ShipCodec: maximal local text runs are stored
// at the librarian (via ToDescriptor, the one copy of the run
// aggregation logic); the result encodes the ordered handle list.
func (c CodeCodec) EncodeShip(store func(text string) (int32, error), v any) ([]byte, error) {
	code, err := asCode(v)
	if err != nil {
		return nil, err
	}
	d, err := ToDescriptor(code, store)
	if err != nil {
		return nil, err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(d.NumHandles()))
	d.walk(nil, func(h int32, n int) {
		buf = binary.AppendVarint(buf, int64(h))
		buf = binary.AppendUvarint(buf, uint64(n))
	})
	return buf, nil
}

// DecodeShip implements ShipCodec. The payload may have crossed a real
// network, so it is treated as hostile until proven otherwise: the
// declared handle count must be coverable by the bytes present (each
// handle costs at least two), handles must fit the librarian's int32
// handle space, run lengths must be sane, and trailing garbage is an
// error rather than silently ignored — a decoded descriptor always
// re-encodes to a canonical byte string.
func (c CodeCodec) DecodeShip(data []byte) (any, error) {
	pos := 0
	count, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("rope: bad descriptor encoding")
	}
	pos += k
	if count > uint64(len(data)-pos)/2 {
		return nil, fmt.Errorf("rope: descriptor declares %d handles in %d bytes", count, len(data)-pos)
	}
	var d *Descriptor
	for i := uint64(0); i < count; i++ {
		h, k := binary.Varint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("rope: bad descriptor handle")
		}
		pos += k
		if h < 0 || h > int64(maxInt32) {
			return nil, fmt.Errorf("rope: descriptor handle %d outside the handle space", h)
		}
		n, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("rope: bad descriptor length")
		}
		pos += k
		if n > uint64(maxInt32) {
			return nil, fmt.Errorf("rope: descriptor run length %d out of range", n)
		}
		d = ConcatDesc(d, HandleDesc(int32(h), int(n)))
	}
	if pos != len(data) {
		return nil, fmt.Errorf("rope: %d trailing bytes after descriptor", len(data)-pos)
	}
	if d == nil {
		d = &Descriptor{}
	}
	return d, nil
}

// maxInt32 bounds wire-decoded handles and run lengths.
const maxInt32 = int64(^uint32(0) >> 1)

func asCode(v any) (Code, error) {
	if v == nil {
		return nil, nil
	}
	c, ok := v.(Code)
	if !ok {
		return nil, fmt.Errorf("rope: value %T is not a Code", v)
	}
	return c, nil
}
