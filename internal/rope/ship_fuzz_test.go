package rope

import (
	"bytes"
	"fmt"
	"testing"
)

// neverStore is the store func for re-encoding a decoded descriptor:
// a descriptor has no local text runs, so storing would be a bug.
func neverStore(text string) (int32, error) {
	return 0, fmt.Errorf("store called for %q on a pure descriptor", text)
}

// FuzzShipCodec feeds arbitrary bytes to DecodeShip. The decoder is the
// trust boundary for ship payloads arriving from remote fleet workers,
// so it must never panic, and anything it accepts must re-encode to a
// canonical form: encode(decode(data)) re-decodes and re-encodes to the
// same bytes. (data itself need not equal the first re-encoding —
// non-minimal varints decode fine but re-encode minimally.)
func FuzzShipCodec(f *testing.F) {
	codec := CodeCodec{Librarian: true}

	// Seed with real encodings: empty, single run, multiple runs.
	var store []string
	dep := func(s string) (int32, error) {
		store = append(store, s)
		return int32(len(store) - 1), nil
	}
	for _, c := range []Code{
		nil,
		Text("x := 1"),
		CatCode(Text("movl r0,r1\n"), Text("addl2 r1,r2\n")),
		CatCode(HandleDesc(7, 3), Text("ret"), HandleDesc(2, 9)),
	} {
		enc, err := codec.EncodeShip(dep, c)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(enc)
	}
	// Hostile seeds: truncation, huge count, trailing garbage,
	// negative and oversized handles.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x01, 0x01})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x01, 0x01, 0x00, 0x00})
	f.Add([]byte{0x01, 0x01, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := codec.DecodeShip(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		d, ok := v.(*Descriptor)
		if !ok {
			t.Fatalf("DecodeShip returned %T, want *Descriptor", v)
		}
		// Everything the decoder accepted must be within bounds.
		WalkCode(d, nil, func(h int32, n int) {
			if h < 0 || n < 0 {
				t.Fatalf("accepted out-of-range handle (%d, %d)", h, n)
			}
		})
		// Round-trip idempotence: the first re-encoding is canonical.
		enc1, err := codec.EncodeShip(neverStore, d)
		if err != nil {
			t.Fatalf("re-encode of accepted input %x: %v", data, err)
		}
		v2, err := codec.DecodeShip(enc1)
		if err != nil {
			t.Fatalf("canonical encoding %x rejected: %v", enc1, err)
		}
		enc2, err := codec.EncodeShip(neverStore, v2.(*Descriptor))
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("round trip not idempotent: %x vs %x (input %x)", enc1, enc2, data)
		}
	})
}

// TestDecodeShipRejects pins the hardening behaviors the fuzzer relies
// on: trailing bytes, unpayable counts, and out-of-range handles and
// lengths are errors, not silent truncations.
func TestDecodeShipRejects(t *testing.T) {
	codec := CodeCodec{}
	for name, data := range map[string][]byte{
		"empty":            {},
		"count no handles": {0x02},
		"huge count":       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"trailing bytes":   {0x00, 0x00},
		"negative handle":  {0x01, 0x01, 0x00},                                     // varint 0x01 = -1
		"handle overflow":  {0x01, 0x80, 0x80, 0x80, 0x80, 0x20, 0x00},             // 2^32 > MaxInt32
		"length overflow":  {0x01, 0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}, // 2^43
		"truncated length": {0x01, 0x80, 0x02},                                     // handle, then no length
	} {
		if _, err := codec.DecodeShip(data); err == nil {
			t.Errorf("%s (%x): accepted", name, data)
		}
	}
	// And the canonical empty payload still round-trips.
	v, err := codec.DecodeShip([]byte{0x00})
	if err != nil {
		t.Fatalf("empty descriptor: %v", err)
	}
	if v.(*Descriptor).Len() != 0 {
		t.Errorf("empty descriptor has length %d", v.(*Descriptor).Len())
	}
}
