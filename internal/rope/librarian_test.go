package rope_test

import (
	"fmt"
	"sync"
	"testing"

	"pag/internal/rope"
)

// TestLibrarianConcurrentStores has many goroutines deposit text under
// private handle ranges concurrently (run with -race) and checks every
// stored string resolves correctly afterwards.
func TestLibrarianConcurrentStores(t *testing.T) {
	lib := rope.NewLibrarian()
	const (
		goroutines = 8
		perG       = 200
	)
	var wg sync.WaitGroup
	handles := make([][]int32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			store := lib.Range(rope.HandleBase(g))
			for i := 0; i < perG; i++ {
				h, err := store(fmt.Sprintf("g%d-%d;", g, i))
				if err != nil {
					t.Errorf("g%d store %d: %v", g, i, err)
					return
				}
				handles[g] = append(handles[g], h)
			}
		}(g)
	}
	wg.Wait()
	count, bytes := lib.Stored()
	if count != goroutines*perG {
		t.Fatalf("stored %d strings, want %d", count, goroutines*perG)
	}
	if bytes == 0 {
		t.Fatal("no bytes recorded")
	}
	for g := range handles {
		for i, h := range handles[g] {
			if got, want := lib.Lookup(h), fmt.Sprintf("g%d-%d;", g, i); got != want {
				t.Fatalf("Lookup(%d) = %q, want %q", h, got, want)
			}
		}
	}
}

// TestToDescriptorRoundTrip checks that converting a mixed Code value
// (local text + handles from another evaluator) to a descriptor and
// resolving it reproduces exactly the flattened text.
func TestToDescriptorRoundTrip(t *testing.T) {
	lib := rope.NewLibrarian()
	remoteStore := lib.Range(rope.HandleBase(1))

	// A "child fragment" ships some code as a descriptor.
	child := rope.CatCode(rope.Text("child-a;"), rope.Text("child-b;"))
	childDesc, err := rope.ToDescriptor(child, remoteStore)
	if err != nil {
		t.Fatal(err)
	}
	if childDesc.NumHandles() != 1 {
		t.Fatalf("adjacent text runs should merge into one handle, got %d", childDesc.NumHandles())
	}

	// The "parent" splices it between local text and re-ships.
	parent := rope.CatCode(rope.Text("head;"), childDesc, rope.Text("tail;"))
	want := "head;child-a;child-b;tail;"
	if got := rope.FlattenCode(parent, lib.Lookup); got != want {
		t.Fatalf("FlattenCode = %q, want %q", got, want)
	}
	parentDesc, err := rope.ToDescriptor(parent, lib.Range(rope.HandleBase(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parentDesc.Len(), len(want); got != want {
		t.Fatalf("descriptor length %d, want %d", got, want)
	}
	if got := parentDesc.Resolve(lib.Lookup); got != want {
		t.Fatalf("Resolve = %q, want %q", got, want)
	}
	// The child's run is referenced, not copied: 3 handles (head, child, tail).
	if parentDesc.NumHandles() != 3 {
		t.Fatalf("parent descriptor has %d handles, want 3", parentDesc.NumHandles())
	}
}

// TestToDescriptorEmpty checks nil and empty Code values.
func TestToDescriptorEmpty(t *testing.T) {
	lib := rope.NewLibrarian()
	d, err := rope.ToDescriptor(nil, lib.Range(0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("nil code described %d bytes", d.Len())
	}
	if count, _ := lib.Stored(); count != 0 {
		t.Fatalf("nil code stored %d strings", count)
	}
}
