package rope

import (
	"errors"
	"testing"
)

// TestRangeExhaustionErrors checks that running out of a private
// handle range fails with ErrRangeExhausted instead of colliding with
// the next range (or, as it once did, panicking the whole process).
// The capacity is lowered for the test; reaching the real 2^20 bound
// would need a million stores.
func TestRangeExhaustionErrors(t *testing.T) {
	defer SetRangeCapForTesting(3)()

	lib := NewLibrarian()
	store := lib.Range(0)
	for i := 0; i < 3; i++ {
		h, err := store("x")
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		if h != int32(i+1) {
			t.Fatalf("store %d: handle %d", i, h)
		}
	}
	if _, err := store("overflow"); !errors.Is(err, ErrRangeExhausted) {
		t.Fatalf("store past the cap returned %v, want ErrRangeExhausted", err)
	}
	// The failed store must not have touched the neighbouring range.
	if got := lib.Lookup(4); got != "" {
		t.Fatalf("failed store leaked text %q into handle 4", got)
	}
}

// TestHandleAllocatorSharesCap checks the cluster-side allocator
// enforces the same cap.
func TestHandleAllocatorSharesCap(t *testing.T) {
	defer SetRangeCapForTesting(2)()

	alloc := HandleAllocator(1)
	base := HandleBase(1)
	for i := int32(1); i <= 2; i++ {
		h, err := alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if h != base+i {
			t.Fatalf("alloc %d: handle %d, want %d", i, h, base+i)
		}
	}
	if _, err := alloc(); !errors.Is(err, ErrRangeExhausted) {
		t.Fatalf("alloc past the cap returned %v, want ErrRangeExhausted", err)
	}
}
