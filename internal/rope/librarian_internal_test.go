package rope

import "testing"

// TestRangeExhaustionPanics checks that running out of a private
// handle range fails loudly instead of colliding with the next range.
// The capacity is lowered for the test; reaching the real 2^20 bound
// would need a million stores.
func TestRangeExhaustionPanics(t *testing.T) {
	defer func(old int32) { rangeCap = old }(rangeCap)
	rangeCap = 3

	lib := NewLibrarian()
	store := lib.Range(0)
	for i := 0; i < 3; i++ {
		if h := store("x"); h != int32(i+1) {
			t.Fatalf("store %d: handle %d", i, h)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic on range exhaustion")
		}
	}()
	store("overflow")
}
