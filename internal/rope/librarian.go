package rope

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Librarian is a shared-memory, thread-safe string librarian: the §4.3
// string-librarian process reimagined for a multicore runtime. Instead
// of a process receiving store messages over the network, evaluator
// goroutines deposit runs of generated text directly under a mutex and
// pass O(1)-sized descriptors between fragments; the final program is
// spliced once from the store.
//
// Handles are assigned from per-caller ranges (Range) so concurrent
// evaluators never contend on a shared counter and handle values stay
// deterministic per fragment.
//
// A single mutex is deliberate: stores happen once per maximal run of
// generated text, which the rope representation keeps to a handful per
// compilation (single digits on the paper's Pascal workload), so the
// librarian is nowhere near the evaluation hot path.
type Librarian struct {
	mu    sync.RWMutex
	store map[int32]string
	bytes int
}

// NewLibrarian returns an empty librarian.
func NewLibrarian() *Librarian {
	return &Librarian{store: make(map[int32]string)}
}

// Handle-range layout shared by both runtimes: evaluator (fragment or
// machine) id maps to a private range of 2^HandleRangeBits handles.
// A range runs out only after a million-odd discrete stores by one
// evaluator, which the maximal-run aggregation above makes unreachable
// in practice.
const (
	// HandleRangeBits is the width of one evaluator's handle range.
	HandleRangeBits = 20
	// MaxHandleRanges is how many disjoint ranges fit in a positive
	// int32; runtimes must not use more evaluators than this with a
	// librarian (ranges would wrap and collide silently).
	MaxHandleRanges = 1 << (31 - HandleRangeBits)
	// RangeCap is how many handles one range may hand out before its
	// store function fails; every store path shares this one cap.
	RangeCap = 1<<HandleRangeBits - 1
)

// ErrRangeExhausted reports that one evaluator's private handle range
// ran out of handles. Store paths return it (wrapped) instead of
// walking into the neighbouring range and corrupting its strings
// silently; runtimes turn it into a per-job failure.
var ErrRangeExhausted = errors.New("rope: handle range exhausted")

// rangeCap is RangeCap as a variable, only so tests can lower it (the
// real value is unreachable in practice, see above). Atomic so a test
// restoring the cap never races a worker goroutine reading it.
var rangeCap atomic.Int32

func init() { rangeCap.Store(RangeCap) }

// SetRangeCapForTesting lowers the shared per-range handle cap and
// returns a restore function. It exists only so exhaustion tests don't
// need a million stores; production code must never call it.
func SetRangeCapForTesting(n int32) (restore func()) {
	old := rangeCap.Swap(n)
	return func() { rangeCap.Store(old) }
}

// HandleAllocator hands out handles from evaluator id's private range:
// base+1, base+2, ... The returned function must be used from a single
// goroutine; it fails with a wrapped ErrRangeExhausted once the range
// is spent. Every store path (shared-memory librarian, simulated
// cluster machines) allocates through this one cap check.
func HandleAllocator(id int) func() (int32, error) {
	return allocatorFrom(HandleBase(id))
}

// allocatorFrom is the single copy of the increment-and-cap logic that
// HandleAllocator and Librarian.Range both allocate through.
func allocatorFrom(base int32) func() (int32, error) {
	next := base
	return func() (int32, error) {
		if next-base >= rangeCap.Load() {
			return 0, fmt.Errorf("%w: range starting at %d is out of handles", ErrRangeExhausted, base)
		}
		next++
		return next, nil
	}
}

// HandleBase returns the first handle of evaluator id's private range.
// id must be in [0, MaxHandleRanges).
func HandleBase(id int) int32 {
	if id < 0 || id >= MaxHandleRanges {
		panic(fmt.Sprintf("rope: handle range %d out of bounds [0, %d)", id, MaxHandleRanges))
	}
	return int32(id) << HandleRangeBits
}

// Range returns a store function that deposits text under handles
// base+1, base+2, ... — one private handle range per evaluator, exactly
// like the per-machine handle ranges of the simulated cluster. The
// returned function must be used from a single goroutine; distinct
// ranges may store concurrently. Once the range is spent the store
// function fails with a wrapped ErrRangeExhausted — reporting the
// error (instead of the panic this used to be) lets a runtime fail the
// one job that ran out rather than the whole process, and never walks
// into the neighbouring range to corrupt its strings silently.
func (l *Librarian) Range(base int32) func(text string) (int32, error) {
	alloc := allocatorFrom(base)
	return func(text string) (int32, error) {
		h, err := alloc()
		if err != nil {
			return 0, err
		}
		l.mu.Lock()
		l.store[h] = text
		l.bytes += len(text)
		l.mu.Unlock()
		return h, nil
	}
}

// Reset empties the store so the librarian can serve another
// compilation, keeping the allocated map. A librarian is one handle
// namespace: a runtime that recycles librarians across jobs must only
// Reset between jobs, never share one librarian between concurrent
// jobs (their per-fragment handle ranges would collide).
func (l *Librarian) Reset() {
	l.mu.Lock()
	clear(l.store)
	l.bytes = 0
	l.mu.Unlock()
}

// Lookup returns the text stored under h (empty if absent).
func (l *Librarian) Lookup(h int32) string {
	l.mu.RLock()
	s := l.store[h]
	l.mu.RUnlock()
	return s
}

// Stored returns how many strings and how many bytes of text have been
// deposited.
func (l *Librarian) Stored() (count, bytes int) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.store), l.bytes
}

// ToDescriptor converts a Code value into a pure Descriptor: maximal
// runs of local text are deposited via store and replaced by their
// handles, and handles already present (descriptors received from other
// evaluators) are kept as-is. It is the shared-memory analogue of
// CodeCodec.EncodeShip — the value crossing the fragment boundary has
// size proportional to the number of referenced runs, not the text
// length. A nil Code yields a nil (empty) Descriptor. A store failure
// (handle-range exhaustion) aborts the walk and is returned.
func ToDescriptor(c Code, store func(text string) (int32, error)) (*Descriptor, error) {
	var d *Descriptor
	var err error
	var run strings.Builder
	flush := func() {
		if run.Len() == 0 || err != nil {
			return
		}
		s := run.String()
		run.Reset()
		h, storeErr := store(s)
		if storeErr != nil {
			err = storeErr
			return
		}
		d = ConcatDesc(d, HandleDesc(h, len(s)))
	}
	WalkCode(c,
		func(s string) {
			if err == nil {
				run.WriteString(s)
			}
		},
		func(h int32, n int) {
			flush()
			if err == nil {
				d = ConcatDesc(d, HandleDesc(h, n))
			}
		})
	flush()
	if err != nil {
		return nil, err
	}
	return d, nil
}
