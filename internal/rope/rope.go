// Package rope implements the string representation of paper §4.3:
// binary trees with the actual text residing in the leaves, making
// concatenation a constant-time operation. Code attributes of the
// generated compiler are ropes, so assembling a program from per-node
// snippets costs O(#concatenations), not O(total length²).
//
// The package also provides the librarian descriptors of paper §4.3: a
// descriptor mirrors a rope's shape but carries only handles to strings
// stored at the string-librarian process, so only the descriptor — not
// the text — travels up the evaluator process tree.
package rope

import (
	"io"
	"strings"
)

// Rope is an immutable string. The nil *Rope is the empty string.
type Rope struct {
	left, right *Rope  // interior node: concatenation
	leaf        string // leaf node: text
	n           int
}

// Leaf returns a rope holding the given text.
func Leaf(s string) *Rope {
	if s == "" {
		return nil
	}
	return &Rope{leaf: s, n: len(s)}
}

// Concat concatenates two ropes in O(1).
func Concat(a, b *Rope) *Rope {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &Rope{left: a, right: b, n: a.n + b.n}
}

// ConcatAll concatenates any number of ropes.
func ConcatAll(rs ...*Rope) *Rope {
	var out *Rope
	for _, r := range rs {
		out = Concat(out, r)
	}
	return out
}

// Len returns the length in bytes.
func (r *Rope) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Leaves calls f on each leaf's text, left to right.
func (r *Rope) Leaves(f func(s string)) {
	if r == nil {
		return
	}
	if r.left == nil && r.right == nil {
		f(r.leaf)
		return
	}
	r.left.Leaves(f)
	r.right.Leaves(f)
}

// String flattens the rope in O(n).
func (r *Rope) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	b.Grow(r.n)
	r.Leaves(func(s string) { b.WriteString(s) })
	return b.String()
}

// WriteTo writes the flattened rope to w.
func (r *Rope) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	var total int64
	var err error
	r.Leaves(func(s string) {
		if err != nil {
			return
		}
		var k int
		k, err = io.WriteString(w, s)
		total += int64(k)
	})
	return total, err
}

// Depth returns the height of the rope tree.
func (r *Rope) Depth() int {
	if r == nil {
		return 0
	}
	l, ri := r.left.Depth(), r.right.Depth()
	if l > ri {
		return l + 1
	}
	return ri + 1
}

// NumLeaves returns the number of leaves.
func (r *Rope) NumLeaves() int {
	if r == nil {
		return 0
	}
	if r.left == nil && r.right == nil {
		return 1
	}
	return r.left.NumLeaves() + r.right.NumLeaves()
}
