package rope

// Descriptor mirrors a rope's concatenation structure but carries only
// handles to strings stored at the string librarian. Combining two
// descriptors is O(1), and a descriptor's network size is a few bytes
// per referenced string rather than the string length — the key to the
// result-propagation optimization of paper §4.3.
type Descriptor struct {
	left, right *Descriptor
	handle      int32 // valid at leaves
	n           int   // total described length in bytes
}

// HandleDesc returns a descriptor leaf referring to librarian entry
// handle, describing n bytes of stored text.
func HandleDesc(handle int32, n int) *Descriptor {
	return &Descriptor{handle: handle, n: n}
}

// ConcatDesc concatenates two descriptors in O(1). Nil operands are
// empty.
func ConcatDesc(a, b *Descriptor) *Descriptor {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &Descriptor{left: a, right: b, n: a.n + b.n}
}

// Len returns the total described text length.
func (d *Descriptor) Len() int {
	if d == nil {
		return 0
	}
	return d.n
}

// Handles calls f for each referenced handle, left to right.
func (d *Descriptor) Handles(f func(h int32)) {
	if d == nil {
		return
	}
	if d.left == nil && d.right == nil {
		f(d.handle)
		return
	}
	d.left.Handles(f)
	d.right.Handles(f)
}

// NumHandles returns the number of handle leaves.
func (d *Descriptor) NumHandles() int {
	c := 0
	d.Handles(func(int32) { c++ })
	return c
}

// WireSize returns the network size of the descriptor in bytes
// (5 bytes per handle leaf: handle plus structure overhead).
func (d *Descriptor) WireSize() int { return 5 * d.NumHandles() }

// Resolve splices the described text by looking up each handle.
func (d *Descriptor) Resolve(lookup func(h int32) string) string {
	var out *Rope
	d.Handles(func(h int32) { out = Concat(out, Leaf(lookup(h))) })
	return out.String()
}
