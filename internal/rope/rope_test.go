package rope_test

import (
	"strings"
	"testing"
	"testing/quick"

	"pag/internal/rope"
)

func TestLeafAndConcat(t *testing.T) {
	r := rope.Concat(rope.Leaf("hello, "), rope.Leaf("world"))
	if got := r.String(); got != "hello, world" {
		t.Errorf("String() = %q", got)
	}
	if r.Len() != 12 {
		t.Errorf("Len() = %d", r.Len())
	}
	if r.NumLeaves() != 2 {
		t.Errorf("NumLeaves() = %d", r.NumLeaves())
	}
}

func TestNilRope(t *testing.T) {
	var r *rope.Rope
	if r.Len() != 0 || r.String() != "" || r.Depth() != 0 {
		t.Error("nil rope should behave as empty")
	}
	if got := rope.Concat(nil, rope.Leaf("x")).String(); got != "x" {
		t.Errorf("Concat(nil, x) = %q", got)
	}
	if got := rope.Concat(rope.Leaf("x"), nil).String(); got != "x" {
		t.Errorf("Concat(x, nil) = %q", got)
	}
	if rope.Leaf("") != nil {
		t.Error("Leaf(\"\") should be nil (empty)")
	}
}

func TestConcatIsConstantShape(t *testing.T) {
	// Concat never copies text: n concats of one leaf produce a tree
	// with exactly n leaves.
	var r *rope.Rope
	for i := 0; i < 100; i++ {
		r = rope.Concat(r, rope.Leaf("x"))
	}
	if r.NumLeaves() != 100 {
		t.Errorf("NumLeaves = %d, want 100", r.NumLeaves())
	}
	if r.Len() != 100 {
		t.Errorf("Len = %d, want 100", r.Len())
	}
}

func TestWriteTo(t *testing.T) {
	r := rope.ConcatAll(rope.Leaf("a"), rope.Leaf("b"), rope.Leaf("c"))
	var sb strings.Builder
	n, err := r.WriteTo(&sb)
	if err != nil || n != 3 || sb.String() != "abc" {
		t.Errorf("WriteTo: n=%d err=%v out=%q", n, err, sb.String())
	}
}

func TestConcatEquivalenceProperty(t *testing.T) {
	// Property: rope concatenation equals string concatenation.
	f := func(parts []string) bool {
		var r *rope.Rope
		var want strings.Builder
		for _, p := range parts {
			r = rope.Concat(r, rope.Leaf(p))
			want.WriteString(p)
		}
		return r.String() == want.String() && r.Len() == want.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDescriptor(t *testing.T) {
	store := map[int32]string{1: "alpha ", 2: "beta ", 3: "gamma"}
	d := rope.ConcatDesc(
		rope.ConcatDesc(rope.HandleDesc(1, 6), rope.HandleDesc(2, 5)),
		rope.HandleDesc(3, 5))
	if d.Len() != 16 {
		t.Errorf("Len = %d, want 16", d.Len())
	}
	if d.NumHandles() != 3 {
		t.Errorf("NumHandles = %d", d.NumHandles())
	}
	got := d.Resolve(func(h int32) string { return store[h] })
	if got != "alpha beta gamma" {
		t.Errorf("Resolve = %q", got)
	}
	if d.WireSize() >= d.Len()+5 {
		t.Errorf("descriptor wire size %d not smaller than text %d", d.WireSize(), d.Len())
	}
}

func TestCodeMixing(t *testing.T) {
	// Code values mix local text and librarian handles.
	mixed := rope.CatCode(
		rope.Text("head "),
		rope.HandleDesc(7, 4),
		rope.Textf(" tail %d", 42),
	)
	if mixed.CodeLen() != len("head ")+4+len(" tail 42") {
		t.Errorf("CodeLen = %d", mixed.CodeLen())
	}
	var texts, handles int
	rope.WalkCode(mixed,
		func(string) { texts++ },
		func(int32, int) { handles++ })
	if texts != 2 || handles != 1 {
		t.Errorf("walk saw %d texts, %d handles", texts, handles)
	}
	got := rope.FlattenCode(mixed, func(h int32) string { return "BODY" })
	if got != "head BODY tail 42" {
		t.Errorf("FlattenCode = %q", got)
	}
}

func TestCodeCodecNaive(t *testing.T) {
	c := rope.CodeCodec{}
	data, err := c.Encode(rope.CatCode(rope.Text("abc"), rope.Text("def")))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := rope.FlattenCode(v.(rope.Code), nil); got != "abcdef" {
		t.Errorf("round trip = %q", got)
	}
	// Naive flattening must reject librarian handles.
	if _, err := c.Encode(rope.HandleDesc(1, 3)); err == nil {
		t.Error("naive codec accepted a handle")
	}
}

func TestCodeCodecShip(t *testing.T) {
	c := rope.CodeCodec{Librarian: true}
	store := map[int32]string{}
	next := int32(100)
	save := func(text string) (int32, error) {
		next++
		store[next] = text
		return next, nil
	}
	// Mixed value: local text around a pre-existing handle.
	orig := rope.CatCode(rope.Text("pre "), rope.HandleDesc(5, 3), rope.Text(" post"))
	store[5] = "MID"
	data, err := c.EncodeShip(save, orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= orig.CodeLen() {
		t.Errorf("descriptor (%d bytes) not smaller than text (%d)", len(data), orig.CodeLen())
	}
	v, err := c.DecodeShip(data)
	if err != nil {
		t.Fatal(err)
	}
	got := rope.FlattenCode(v.(rope.Code), func(h int32) string { return store[h] })
	if got != "pre MID post" {
		t.Errorf("ship round trip = %q", got)
	}
}

func TestShipRoundTripProperty(t *testing.T) {
	// Property: EncodeShip/DecodeShip preserves the text for any run
	// structure.
	c := rope.CodeCodec{Librarian: true}
	f := func(parts []string) bool {
		var code rope.Code
		var want strings.Builder
		for _, p := range parts {
			code = rope.CatCode(code, rope.Text(p))
			want.WriteString(p)
		}
		store := map[int32]string{}
		next := int32(0)
		data, err := c.EncodeShip(func(s string) (int32, error) {
			next++
			store[next] = s
			return next, nil
		}, code)
		if err != nil {
			return false
		}
		v, err := c.DecodeShip(data)
		if err != nil {
			return false
		}
		got := rope.FlattenCode(v.(rope.Code), func(h int32) string { return store[h] })
		return got == want.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
