package eval_test

import (
	"fmt"
	"testing"

	"pag/internal/ag"
	"pag/internal/eval"
	"pag/internal/exprlang"
	"pag/internal/tree"
)

var exprCases = []struct {
	src  string
	want int
}{
	{"let x = 2 in 1 + 3*x ni", 7},
	{"42", 42},
	{"2*3 + 4*5", 26},
	{"(2+3)*4", 20},
	{"let a = 5 in let b = a * a in b + a ni ni", 30},
	{"let x = 1 in x + x + x ni * 2", 5}, // precedence: x+x+(x ni *2)? no: ni closes; actually (let..ni)*? see note
	{"y + 3", 3},                         // undefined identifier evaluates to 0
	{exprlang.Generate(4, 6), (1 + 2 + 3 + 4) * (1 + 2 + 3 + 4 + 5 + 6)},
	{exprlang.GenerateNested(3, 4), 1 + (1+2+3+4)*(1+2+3)},
}

func init() {
	// Fix the precedence-sensitive case: "let x = 1 in x + x + x ni * 2"
	// parses as let x=1 in (x+x+x) ni, then * 2 applies to the block
	// value: (1+1+1)*2 = 6... but '*' binds tighter than '+', and the
	// block is a factor, so the parse is 3 * 2 = 6.
	exprCases[5].want = 6
}

func parseCase(t *testing.T, l *exprlang.Lang, src string) *tree.Node {
	t.Helper()
	root, err := l.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return root
}

func TestDynamicEvaluatesExpressions(t *testing.T) {
	l := exprlang.MustNew()
	for _, tc := range exprCases {
		root := parseCase(t, l, tc.src)
		d := eval.NewDynamic(l.G, root, eval.Hooks{})
		d.Run()
		if !d.Done() {
			t.Fatalf("%q: dynamic evaluator blocked: %v", tc.src, d.Blocked())
		}
		if got := root.Attrs[exprlang.AttrValue]; got != tc.want {
			t.Errorf("%q: dynamic value = %v, want %d", tc.src, got, tc.want)
		}
	}
}

func TestStaticEvaluatesExpressions(t *testing.T) {
	l := exprlang.MustNew()
	a, err := ag.Analyze(l.G)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, tc := range exprCases {
		root := parseCase(t, l, tc.src)
		s := eval.NewStatic(a, eval.Hooks{})
		if err := s.EvaluateTree(root); err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if got := root.Attrs[exprlang.AttrValue]; got != tc.want {
			t.Errorf("%q: static value = %v, want %d", tc.src, got, tc.want)
		}
	}
}

func TestStaticRejectsRemoteLeaves(t *testing.T) {
	l := exprlang.MustNew()
	a, err := ag.Analyze(l.G)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	root := parseCase(t, l, exprlang.Generate(4, 6))
	d := tree.Decompose(root, 10, 4)
	if d.NumFragments() < 2 {
		t.Fatal("decomposition produced no cuts")
	}
	s := eval.NewStatic(a, eval.Hooks{})
	if err := s.EvaluateTree(root); err == nil {
		t.Fatal("static evaluator accepted a fragment with remote leaves")
	}
}

func TestCombinedOnUnsplitTreeIsPureStatic(t *testing.T) {
	l := exprlang.MustNew()
	a, err := ag.Analyze(l.G)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, tc := range exprCases {
		root := parseCase(t, l, tc.src)
		c := eval.NewCombined(a, root, eval.Hooks{})
		// The start symbol has no inherited attributes, so the whole
		// fragment evaluates in one Run.
		c.Run()
		if !c.Done() {
			t.Fatalf("%q: combined evaluator not done: %v", tc.src, c.Blocked())
		}
		if got := root.Attrs[exprlang.AttrValue]; got != tc.want {
			t.Errorf("%q: combined value = %v, want %d", tc.src, got, tc.want)
		}
		if st := c.Stats(); st.DynamicEvals != 0 {
			t.Errorf("%q: unsplit combined run evaluated %d attrs dynamically, want 0", tc.src, st.DynamicEvals)
		}
	}
}

// pump runs a set of fragment evaluators to completion, relaying
// attribute values between fragments synchronously. It is the
// single-process stand-in for the network runtime in cluster.
type pump struct {
	evs    []eval.FragmentEvaluator
	leaves map[int]leafRef // fragment id -> remote leaf in parent
	queue  []func()
}

type leafRef struct {
	parentEv int
	leaf     *tree.Node
}

func newPump(t *testing.T, g *ag.Grammar, a *ag.Analysis, d *tree.Decomposition, combined bool) *pump {
	t.Helper()
	p := &pump{leaves: make(map[int]leafRef)}
	for _, f := range d.Frags {
		f := f
		for _, pf := range d.Frags {
			pf.Root.Walk(func(n *tree.Node) {
				if n.Remote && n.RemoteID == f.ID {
					p.leaves[f.ID] = leafRef{parentEv: pf.ID, leaf: n}
				}
			})
		}
	}
	for _, f := range d.Frags {
		f := f
		hooks := eval.Hooks{
			OnRemoteInh: func(leaf *tree.Node, attr int, v ag.Value) {
				child := leaf.RemoteID
				p.queue = append(p.queue, func() {
					p.evs[child].Supply(d.Frags[child].Root, attr, v)
					p.evs[child].Run()
				})
			},
			OnRootSyn: func(attr int, v ag.Value) {
				ref, ok := p.leaves[f.ID]
				if !ok {
					return // root fragment: final attribute
				}
				p.queue = append(p.queue, func() {
					p.evs[ref.parentEv].Supply(ref.leaf, attr, v)
					p.evs[ref.parentEv].Run()
				})
			},
		}
		if combined {
			p.evs = append(p.evs, eval.NewCombined(a, f.Root, hooks))
		} else {
			p.evs = append(p.evs, eval.NewDynamic(g, f.Root, hooks))
		}
	}
	return p
}

func (p *pump) run(t *testing.T) {
	t.Helper()
	for _, e := range p.evs {
		e.Run()
	}
	for len(p.queue) > 0 {
		next := p.queue[0]
		p.queue = p.queue[1:]
		next()
	}
	for i, e := range p.evs {
		if !e.Done() {
			t.Fatalf("fragment %d blocked: %v", i, e.Blocked())
		}
	}
}

func TestDistributedEvaluationAgrees(t *testing.T) {
	l := exprlang.MustNew()
	a, err := ag.Analyze(l.G)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	srcs := []string{
		exprlang.Generate(3, 4),
		exprlang.Generate(6, 8),
		exprlang.Generate(10, 3),
		"let x = 2 in 1 + 3*x ni",
	}
	for _, src := range srcs {
		// Sequential reference value.
		ref := parseCase(t, l, src)
		eval.NewDynamic(l.G, ref, eval.Hooks{}).Run()
		want := ref.Attrs[exprlang.AttrValue]

		for _, mode := range []string{"dynamic", "combined"} {
			for _, frags := range []int{2, 3, 5} {
				root := parseCase(t, l, src)
				gran := tree.GranularityFor(root, frags)
				d := tree.Decompose(root, gran, frags)
				p := newPump(t, l.G, a, d, mode == "combined")
				p.run(t)
				got := d.Frags[0].Root.Attrs[exprlang.AttrValue]
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%s x%d on %q: value = %v, want %v (frags=%d)",
						mode, frags, truncate(src), got, want, d.NumFragments())
				}
			}
		}
	}
}

func TestCombinedDynamicFractionIsSmall(t *testing.T) {
	l := exprlang.MustNew()
	a, err := ag.Analyze(l.G)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	root := parseCase(t, l, exprlang.Generate(12, 10))
	d := tree.Decompose(root, tree.GranularityFor(root, 5), 5)
	if d.NumFragments() < 3 {
		t.Fatalf("expected several fragments, got %d", d.NumFragments())
	}
	p := newPump(t, l.G, a, d, true)
	p.run(t)
	var total eval.Stats
	for _, e := range p.evs {
		total.Add(e.Stats())
	}
	if total.StaticEvals == 0 {
		t.Fatal("no static evaluations recorded")
	}
	if f := total.DynamicFraction(); f >= 0.30 {
		t.Errorf("dynamic fraction = %.2f, want < 0.30 (paper: vast majority static)", f)
	}
}

func truncate(s string) string {
	if len(s) > 32 {
		return s[:32] + "..."
	}
	return s
}
