package eval_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"pag/internal/ag"
	"pag/internal/eval"
	"pag/internal/tree"
)

// twoPhase builds a grammar whose nonterminal needs two visits:
//
//	root -> chain            chain.min = 0; chain.shift = chain.max + 1
//	                         root.out = chain.sum
//	chain -> LEAF(n)         max = max(min, n); sum = n + shift
//	chain -> chain LEAF(n)   min/max thread down/up; second phase: shift
//	                         threads down, sum accumulates up
//
// Phase 1 computes the maximum leaf value (up), phase 2 distributes a
// shift derived from it (down) and sums shifted values (up). The chain
// symbol is splittable, so distributed evaluation must gate static
// visits per phase and exchange four attribute values per boundary.
type twoPhaseLang struct {
	g     *ag.Grammar
	a     *ag.Analysis
	leaf  *ag.Symbol
	chain *ag.Symbol
	root  *ag.Symbol
	pOne  *ag.Production
	pCons *ag.Production
	pRoot *ag.Production
}

type tpIntCodec struct{}

func (tpIntCodec) Encode(v ag.Value) ([]byte, error) {
	return binary.AppendVarint(nil, int64(v.(int))), nil
}

func (tpIntCodec) Decode(d []byte) (ag.Value, error) {
	n, k := binary.Varint(d)
	if k <= 0 {
		return nil, fmt.Errorf("bad int")
	}
	return int(n), nil
}

func newTwoPhase(t *testing.T) *twoPhaseLang {
	t.Helper()
	b := ag.NewBuilder("twophase")
	l := &twoPhaseLang{}
	l.leaf = b.Terminal("LEAF", ag.Syn("n"))
	ic := tpIntCodec{}
	l.chain = b.SplitNonterminal("chain", 4,
		ag.Syn("max").WithCodec(ic), ag.Inh("min").WithCodec(ic),
		ag.Syn("sum").WithCodec(ic), ag.Inh("shift").WithCodec(ic))
	l.root = b.Nonterminal("root", ag.Syn("out").WithCodec(ic))
	b.Start(l.root)

	maxOf := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	l.pRoot = b.Production(l.root, []*ag.Symbol{l.chain},
		ag.Const("1.min", 0),
		ag.Def("1.shift", func(a []ag.Value) ag.Value { return a[0].(int) + 1 }, "1.max"),
		ag.Copy("out", "1.sum"),
	)
	l.pOne = b.Production(l.chain, []*ag.Symbol{l.leaf},
		ag.Def("max", func(a []ag.Value) ag.Value { return maxOf(a[0].(int), a[1].(int)) },
			"min", "1.n"),
		ag.Def("sum", func(a []ag.Value) ag.Value { return a[0].(int) + a[1].(int) },
			"shift", "1.n"),
	)
	l.pCons = b.Production(l.chain, []*ag.Symbol{l.chain, l.leaf},
		ag.Copy("1.min", "min"),
		ag.Def("max", func(a []ag.Value) ag.Value { return maxOf(a[0].(int), a[1].(int)) },
			"1.max", "2.n"),
		ag.Copy("1.shift", "shift"),
		ag.Def("sum", func(a []ag.Value) ag.Value { return a[0].(int) + a[1].(int) + a[2].(int) },
			"1.sum", "2.n", "shift"),
	)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l.g = g
	l.a, err = ag.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return l
}

// build constructs a chain over the given leaf values.
func (l *twoPhaseLang) build(vals []int) *tree.Node {
	leaf := func(n int) *tree.Node {
		return tree.NewTerminal(l.leaf, fmt.Sprint(n), n)
	}
	node := tree.New(l.pOne, leaf(vals[0]))
	for _, v := range vals[1:] {
		node = tree.New(l.pCons, node, leaf(v))
	}
	return tree.New(l.pRoot, node)
}

// expected computes the reference value: each leaf contributes
// n + (max+1), plus every interior chain node adds shift once more.
func (l *twoPhaseLang) expected(vals []int) int {
	max := 0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	shift := max + 1
	sum := 0
	for _, v := range vals {
		sum += v
	}
	// pOne adds shift once; each pCons adds shift once.
	return sum + shift*len(vals)
}

func TestTwoPhaseAnalysis(t *testing.T) {
	l := newTwoPhase(t)
	if v := l.a.NumVisits(l.chain); v != 2 {
		t.Fatalf("chain visits = %d, want 2 (%+v)", v, l.a.Phases(l.chain))
	}
	ph := l.a.Phases(l.chain)
	if len(ph[0].Inh) != 1 || l.chain.Attrs[ph[0].Inh[0]].Name != "min" {
		t.Errorf("phase 1 inh = %+v, want [min]", ph[0].Inh)
	}
	if len(ph[1].Syn) != 1 || l.chain.Attrs[ph[1].Syn[0]].Name != "sum" {
		t.Errorf("phase 2 syn = %+v, want [sum]", ph[1].Syn)
	}
	if !l.a.DependsTransitively(l.chain, l.chain.AttrIndex("min"), l.chain.AttrIndex("max")) {
		t.Error("max should depend on min")
	}
}

func TestTwoPhaseSequentialAgreement(t *testing.T) {
	l := newTwoPhase(t)
	vals := []int{3, 1, 4, 1, 5, 9, 2, 6}
	want := l.expected(vals)

	rootD := l.build(vals)
	d := eval.NewDynamic(l.g, rootD, eval.Hooks{})
	d.Run()
	if !d.Done() {
		t.Fatalf("dynamic blocked: %v", d.Blocked())
	}
	if got := rootD.Attrs[0]; got != want {
		t.Errorf("dynamic out = %v, want %d", got, want)
	}

	rootS := l.build(vals)
	st := eval.NewStatic(l.a, eval.Hooks{})
	if err := st.EvaluateTree(rootS); err != nil {
		t.Fatal(err)
	}
	if got := rootS.Attrs[0]; got != want {
		t.Errorf("static out = %v, want %d", got, want)
	}
}

func TestTwoPhaseDistributed(t *testing.T) {
	// Distribute a long chain over several fragments: phase-1 values
	// must flow up through every boundary, the root turns them around,
	// and phase-2 values flow back down before the sums return. This
	// exercises the combined evaluator's per-phase gating of static
	// subtrees across machines.
	l := newTwoPhase(t)
	vals := make([]int, 40)
	for i := range vals {
		vals[i] = (i * 7) % 13
	}
	want := l.expected(vals)

	for _, mode := range []string{"dynamic", "combined"} {
		for _, frags := range []int{2, 3, 5} {
			root := l.build(vals)
			dec := tree.Decompose(root, tree.GranularityFor(root, frags), frags)
			if dec.NumFragments() < 2 {
				t.Fatalf("no cuts at frags=%d", frags)
			}
			p := newPump(t, l.g, l.a, dec, mode == "combined")
			p.run(t)
			if got := dec.Frags[0].Root.Attrs[0]; got != want {
				t.Errorf("%s x%d: out = %v, want %d", mode, frags, got, want)
			}
		}
	}
}

func TestTwoPhaseCombinedStatsAcrossBoundaries(t *testing.T) {
	l := newTwoPhase(t)
	vals := make([]int, 60)
	for i := range vals {
		vals[i] = i % 10
	}
	root := l.build(vals)
	dec := tree.Decompose(root, tree.GranularityFor(root, 4), 4)
	p := newPump(t, l.g, l.a, dec, true)
	p.run(t)
	var total eval.Stats
	for _, e := range p.evs {
		total.Add(e.Stats())
	}
	// Each boundary exchanges four attribute values (max/sum up,
	// min/shift down).
	wantSupplied := 4 * (dec.NumFragments() - 1)
	if total.Supplied != wantSupplied {
		t.Errorf("supplied = %d, want %d (4 per boundary)", total.Supplied, wantSupplied)
	}
	// A chain decomposition is the combined evaluator's worst case:
	// every chain node above the cut lies on the spine, so most
	// attributes go dynamic — unlike the Pascal tree, where procedure
	// bodies hang off the spine. The bottom fragment must still be
	// fully static, so some static evaluation always remains.
	if total.StaticEvals == 0 {
		t.Error("no static evaluations; the bottom fragment should be fully static")
	}
	if f := total.DynamicFraction(); f >= 1.0 {
		t.Errorf("dynamic fraction = %.2f; combined must keep some work static", f)
	}
}
