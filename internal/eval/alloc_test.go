package eval_test

import (
	"strings"
	"testing"

	"pag/internal/ag"
	"pag/internal/eval"
	"pag/internal/exprlang"
)

// arithSource builds a pure-arithmetic expression whose semantic rules
// allocate nothing in steady state: integer results are interned via
// ag.IntValue and the symbol table is the shared empty table.
func arithSource(terms int) string {
	var b strings.Builder
	b.WriteString("1")
	for i := 0; i < terms; i++ {
		if i%2 == 0 {
			b.WriteString("+2*3")
		} else {
			b.WriteString("+(4+5)")
		}
	}
	return b.String()
}

// TestStaticVisitAllocFree locks in the zero-allocation steady state of
// the static evaluator's inner loop: once the evaluator exists,
// re-running the visit sequences over a tree must not allocate at all
// (scratch argument buffer, compiled plans, interned small ints). This
// is the regression guard the perf work depends on — reintroducing a
// per-op make([]ag.Value, ...) or un-interning the int attributes
// fails this test immediately.
func TestStaticVisitAllocFree(t *testing.T) {
	l := exprlang.MustNew()
	a, err := ag.Analyze(l.G)
	if err != nil {
		t.Fatal(err)
	}
	root, err := l.Parse(arithSource(40))
	if err != nil {
		t.Fatal(err)
	}
	st := eval.NewStatic(a, eval.Hooks{})
	visits := a.NumVisits(root.Sym)
	run := func() {
		for v := 1; v <= visits; v++ {
			st.Visit(root, v)
		}
	}
	run() // warm
	if allocs := testing.AllocsPerRun(50, run); allocs > 0 {
		t.Errorf("static visit loop allocates %.1f times per tree pass; want 0", allocs)
	}
}

// TestDynamicEvaluatorAllocBudget bounds the allocations of a complete
// dynamic build+evaluate cycle. The flat instance table, slab-carved
// dependent edges and reusable ready queues put the build cost at a
// handful of slice growths — nowhere near the one-allocation-per-
// instance regime of a map-based graph. The budget is under 2x the
// measured value (71 allocs for 444 instances), loose enough for
// layout jitter and tight enough that a return to per-instance
// allocation fails.
func TestDynamicEvaluatorAllocBudget(t *testing.T) {
	l := exprlang.MustNew()
	root, err := l.Parse(arithSource(40))
	if err != nil {
		t.Fatal(err)
	}
	instances := root.CountAttrs()
	allocs := testing.AllocsPerRun(20, func() {
		d := eval.NewDynamic(l.G, root, eval.Hooks{})
		if d.Run(); !d.Done() {
			t.Fatal("evaluator blocked")
		}
	})
	const budget = 120
	if allocs > budget {
		t.Errorf("dynamic build+run allocates %.0f times for %d instances; budget %d", allocs, instances, budget)
	}
}

// TestCombinedEvaluatorAllocBudget does the same for the combined
// evaluator on a fully local fragment (the static fast path plus the
// combined bookkeeping around it).
func TestCombinedEvaluatorAllocBudget(t *testing.T) {
	l := exprlang.MustNew()
	a, err := ag.Analyze(l.G)
	if err != nil {
		t.Fatal(err)
	}
	root, err := l.Parse(arithSource(40))
	if err != nil {
		t.Fatal(err)
	}
	instances := root.CountAttrs()
	allocs := testing.AllocsPerRun(20, func() {
		c := eval.NewCombined(a, root, eval.Hooks{})
		if c.Run(); !c.Done() {
			t.Fatal("evaluator blocked")
		}
	})
	const budget = 60
	if allocs > budget {
		t.Errorf("combined build+run allocates %.0f times for %d instances; budget %d", allocs, instances, budget)
	}
}
