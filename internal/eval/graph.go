package eval

import (
	"fmt"
	"slices"

	"pag/internal/ag"
	"pag/internal/tree"
)

// instInfo is one dependency-graph row of the flat instance table.
// node/attr identify the instance; rule/home the defining production
// occurrence (rule is nil for pure inputs such as remote-leaf
// synthesized attributes).
type instInfo struct {
	rule       *ag.Rule
	home       *tree.Node
	node       *tree.Node
	attr       int32
	remaining  int32 // dependencies not yet available
	ndep       int32 // build scratch: dependents counted in the scan pass
	present    bool  // instance appears in the dependency graph
	avail      bool
	dependents []int32 // instance ids unblocked when this one arrives
}

// graph is the dependency-graph core shared by the Dynamic and Combined
// evaluators. Attribute instances live in a flat table indexed by the
// node's registration number (tree.Node.Seq) and attribute index —
// godl's flat-matrix relation style applied to attribute instances —
// so the steady-state evaluation loop performs no map lookups and no
// allocation: rule arguments go through a reusable scratch buffer,
// dependent edges are carved from a single slab, and the ready queues
// recycle their backing arrays.
type graph struct {
	hooks Hooks
	root  *tree.Node

	nodes    []*tree.Node         // registered nodes; Seq-1 indexes this
	attrBase []int32              // first instance id of each registered node
	infos    []instInfo           // flat node×attr instance table
	seqOf    map[*tree.Node]int32 // fallback when another evaluator overwrote Seq

	order     []int32 // defined instances in build order (determinism, diagnostics)
	ready     []int32 // FIFO worklist
	readyPrio []int32 // priority attributes jump the queue (paper §4.3)
	readyHead int
	prioHead  int

	argbuf    []ag.Value // scratch for rule arguments; rules must not retain it
	defined   int
	evaluated int
	stats     Stats

	// onInhAvail, set by Combined, fires when an inherited attribute
	// instance becomes available (it may enable a static child visit).
	onInhAvail func(n *tree.Node, attr int)
}

func (g *graph) init(root *tree.Node, maxArgs int, hooks Hooks) {
	g.root = root
	g.hooks = hooks
	g.argbuf = make([]ag.Value, maxArgs)
}

// register assigns node n a registration number and extends the flat
// table with one (zeroed) row per attribute. A node's number from a
// previous evaluator is validated before reuse, so evaluators never
// need to reset the tree; the side map keeps this graph's own numbers
// recoverable even if a later evaluator over the same tree overwrites
// Seq (one map entry per node, not per instance — the fast path never
// touches it while this graph owns the numbering).
func (g *graph) register(n *tree.Node) int32 {
	if s := n.Seq; s > 0 && int(s) <= len(g.nodes) && g.nodes[s-1] == n {
		return g.attrBase[s-1]
	}
	if s, ok := g.seqOf[n]; ok {
		n.Seq = s // reclaim our numbering from the side map
		return g.attrBase[s-1]
	}
	base := int32(len(g.infos))
	g.nodes = append(g.nodes, n)
	g.attrBase = append(g.attrBase, base)
	n.Seq = int32(len(g.nodes))
	if g.seqOf == nil {
		g.seqOf = make(map[*tree.Node]int32)
	}
	g.seqOf[n] = n.Seq
	g.infos = slices.Grow(g.infos, len(n.Attrs))[:len(g.infos)+len(n.Attrs)]
	for a := range n.Attrs {
		in := &g.infos[int(base)+a]
		in.node = n
		in.attr = int32(a)
	}
	return base
}

// idx returns the instance id of (n, attr), registering n as needed.
// Pointers into g.infos are invalidated by registration; callers index
// by id instead of retaining *instInfo across idx calls.
func (g *graph) idx(n *tree.Node, attr int) int32 {
	return g.register(n) + int32(attr)
}

// lookup returns the instance id of (n, attr) if n is registered with
// this graph.
func (g *graph) lookup(n *tree.Node, attr int) (int32, bool) {
	if s := n.Seq; s > 0 && int(s) <= len(g.nodes) && g.nodes[s-1] == n {
		return g.attrBase[s-1] + int32(attr), true
	}
	if s, ok := g.seqOf[n]; ok {
		return g.attrBase[s-1] + int32(attr), true
	}
	return 0, false
}

// touch marks instance i as part of the dependency graph, charging the
// graph-node cost on first contact (the paper's dynamic dependency
// analysis cost).
func (g *graph) touch(i int32) {
	in := &g.infos[i]
	if !in.present {
		in.present = true
		g.stats.GraphNodes++
		g.hooks.charge(CostGraphNode)
	}
}

// scanNodeRules is the first build pass over node n's production: it
// registers every instance, records defining rules, counts dependency
// edges (remaining) and dependent-list sizes (ndep), and charges the
// simulated dependency-analysis costs exactly as the one-pass builder
// did.
func (g *graph) scanNodeRules(n *tree.Node) {
	p := n.Prod
	for ri := range p.Rules {
		r := &p.Rules[ri]
		t := g.idx(resolveNode(n, r.Target))
		g.touch(t)
		g.infos[t].rule = r
		g.infos[t].home = n
		g.defined++
		g.order = append(g.order, t)
		for _, dep := range r.Deps {
			dn, da := resolveNode(n, dep)
			if dn.Sym.Terminal {
				continue // scanner-supplied, always available
			}
			d := g.idx(dn, da)
			g.touch(d)
			g.infos[d].ndep++
			g.infos[t].remaining++
			g.stats.GraphEdges++
			g.hooks.charge(CostGraphEdge)
		}
	}
}

// finishBuild carves every dependent list out of one edge slab and runs
// the second pass linking dependents, then seeds the ready queues from
// instances with no pending dependencies, in build order.
func (g *graph) finishBuild(scanned []*tree.Node) {
	total := 0
	for i := range g.infos {
		total += int(g.infos[i].ndep)
	}
	if total > 0 {
		edges := make([]int32, total)
		off := 0
		for i := range g.infos {
			if nd := int(g.infos[i].ndep); nd > 0 {
				g.infos[i].dependents = edges[off : off : off+nd]
				off += nd
			}
		}
	}
	for _, n := range scanned {
		p := n.Prod
		for ri := range p.Rules {
			r := &p.Rules[ri]
			t := g.idx(resolveNode(n, r.Target))
			for _, dep := range r.Deps {
				dn, da := resolveNode(n, dep)
				if dn.Sym.Terminal {
					continue
				}
				d := g.idx(dn, da)
				g.infos[d].dependents = append(g.infos[d].dependents, t)
			}
		}
	}
	for _, t := range g.order {
		if g.infos[t].remaining == 0 {
			g.push(t)
		}
	}
}

func (g *graph) push(i int32) {
	in := &g.infos[i]
	if in.node.Sym.Attrs[in.attr].Priority && !g.hooks.NoPriority {
		g.readyPrio = append(g.readyPrio, i)
	} else {
		g.ready = append(g.ready, i)
	}
}

// pop takes the next ready instance: priority first, then FIFO. Drained
// queues reset to reuse their backing arrays instead of leaking
// capacity behind an advancing slice header.
func (g *graph) pop() (int32, bool) {
	if g.prioHead < len(g.readyPrio) {
		i := g.readyPrio[g.prioHead]
		g.prioHead++
		if g.prioHead == len(g.readyPrio) {
			g.readyPrio = g.readyPrio[:0]
			g.prioHead = 0
		}
		return i, true
	}
	if g.readyHead < len(g.ready) {
		i := g.ready[g.readyHead]
		g.readyHead++
		if g.readyHead == len(g.ready) {
			g.ready = g.ready[:0]
			g.readyHead = 0
		}
		return i, true
	}
	return 0, false
}

// run evaluates every ready instance in topological order and returns
// how many it evaluated.
func (g *graph) run() int {
	count := 0
	for {
		i, ok := g.pop()
		if !ok {
			return count
		}
		g.evaluate(i)
		count++
	}
}

func (g *graph) evaluate(i int32) {
	in := &g.infos[i]
	r := in.rule
	home := in.home
	args := g.argbuf[:len(r.Deps)]
	for k, dep := range r.Deps {
		dn, da := resolveNode(home, dep)
		args[k] = dn.Attrs[da]
	}
	v := r.Eval(args)
	in.node.Attrs[in.attr] = v
	g.hooks.charge(r.SimCost(args) + CostSchedule)
	g.stats.DynamicEvals++
	g.evaluated++
	g.markAvail(i, v)
}

func (g *graph) markAvail(i int32, v ag.Value) {
	in := &g.infos[i]
	in.avail = true
	n, a := in.node, int(in.attr)
	attr := n.Sym.Attrs[a]
	if n.Remote && attr.Kind == ag.Inherited && g.hooks.OnRemoteInh != nil {
		g.hooks.OnRemoteInh(n, a, v)
	}
	if n == g.root && attr.Kind == ag.Synthesized && g.hooks.OnRootSyn != nil {
		g.hooks.OnRootSyn(a, v)
	}
	if g.onInhAvail != nil && attr.Kind == ag.Inherited {
		g.onInhAvail(n, a)
	}
	for _, dep := range in.dependents {
		di := &g.infos[dep]
		di.remaining--
		if di.remaining == 0 && di.rule != nil {
			g.push(dep)
		}
	}
}

// blocked lists blocked instances for deadlock diagnostics.
func (g *graph) blocked() []string {
	var out []string
	for _, key := range g.order {
		if in := &g.infos[key]; !in.avail {
			out = append(out, fmt.Sprintf("%s.%s (missing %d)",
				in.node.Sym.Name, in.node.Sym.Attrs[in.attr].Name, in.remaining))
		}
	}
	return out
}

// resolveNode maps an attribute reference of the production at home to
// the tree node and attribute index carrying the instance.
func resolveNode(home *tree.Node, r ag.AttrRef) (*tree.Node, int) {
	if r.Occ == 0 {
		return home, r.Attr
	}
	return home.Children[r.Occ-1], r.Attr
}
