package eval

import (
	"fmt"

	"pag/internal/ag"
	"pag/internal/tree"
)

// Static is the static ordered evaluator of paper §2.3 / Figure 3: a
// collection of visit procedures, one per production, that walk the
// tree in the order precomputed by the OAG analysis. It performs no
// dependency analysis at evaluation time, and — driving the compiled
// visit sequences cached per production by the analysis — no rule
// lookups and no allocation either: rule arguments pass through one
// reusable scratch buffer.
type Static struct {
	a      *ag.Analysis
	hooks  Hooks
	stats  Stats
	argbuf []ag.Value // scratch for rule arguments; rules must not retain it
}

// NewStatic returns a static evaluator over the given grammar analysis.
func NewStatic(a *ag.Analysis, hooks Hooks) *Static {
	return &Static{a: a, hooks: hooks, argbuf: make([]ag.Value, a.G.MaxRuleArgs())}
}

// EvaluateTree evaluates every attribute instance of a complete local
// tree (no remote leaves). The root's inherited attributes, if any,
// must be preset on root.Attrs.
func (s *Static) EvaluateTree(root *tree.Node) error {
	var remote *tree.Node
	root.Walk(func(n *tree.Node) {
		if n.Remote && remote == nil {
			remote = n
		}
	})
	if remote != nil {
		return fmt.Errorf("eval: static evaluator cannot process a fragment with remote leaves (found %s); use the combined evaluator", remote.Sym)
	}
	if root.Sym.Terminal {
		return nil
	}
	for v := 1; v <= s.a.NumVisits(root.Sym); v++ {
		s.Visit(root, v)
	}
	return nil
}

// Visit runs visit number v (1-based) of the static plan on node n.
// The inherited attributes of n's phases 1..v must already be set.
// After Visit returns, the synthesized attributes of phase v are set.
func (s *Static) Visit(n *tree.Node, v int) {
	plan := s.a.Compiled(n.Prod)
	for i := range plan.Segments[v-1] {
		op := &plan.Segments[v-1][i]
		if op.Rule != nil {
			s.evalOp(n, op)
		} else {
			s.hooks.charge(CostVisit)
			s.Visit(n.Children[op.Child-1], int(op.Visit))
		}
	}
}

func (s *Static) evalOp(n *tree.Node, op *ag.CompiledOp) {
	rule := op.Rule
	args := s.argbuf[:len(rule.Deps)]
	for k, dep := range rule.Deps {
		dn, da := resolveNode(n, dep)
		args[k] = dn.Attrs[da]
	}
	val := rule.Eval(args)
	target := n
	if op.TargetOcc > 0 {
		target = n.Children[op.TargetOcc-1]
	}
	target.Attrs[op.TargetAttr] = val
	s.hooks.charge(rule.SimCost(args) + CostStaticOp)
	s.stats.StaticEvals++
}

// Stats returns evaluation statistics.
func (s *Static) Stats() Stats { return s.stats }
