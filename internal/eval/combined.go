package eval

import (
	"fmt"

	"pag/internal/ag"
	"pag/internal/arena"
	"pag/internal/tree"
)

// staticChild drives static evaluation of one subtree hanging off the
// dynamic spine: static visit v may run once all inherited attributes
// of the subtree root's phases 1..v have been computed dynamically.
// Running visit v makes the phase-v synthesized attributes available to
// the dynamic graph — this encodes exactly the transitive dependencies
// "precomputed by the static evaluator generator" that paper §2.4 says
// are entered into the dynamic dependency graph.
type staticChild struct {
	node       *tree.Node
	nextVisit  int     // next visit to run, 1-based
	pendingInh []int32 // per phase: inherited attrs not yet available
}

// Combined is the paper's combined static/dynamic evaluator (§2.4,
// Figure 4): nodes on a path from the fragment root to a remote leaf
// (the spine) are evaluated dynamically; every subtree hanging off the
// spine — in particular every bottom fragment — is evaluated by the
// static ordered evaluator, with no dependency analysis at all.
type Combined struct {
	a  *ag.Analysis
	g  graph
	st *Static

	// rootStatic indicates the fragment has no remote leaves: the
	// entire fragment is one static subtree (kids[0]) driven by the
	// arrival of the root's inherited phases.
	rootStatic bool

	// kids holds the static children in tree (preorder) order; childOf
	// maps a subtree root to its index. Slices into kids are only taken
	// after construction, when the slice has stopped growing.
	kids    []staticChild
	childOf map[*tree.Node]int32
	inhSlab arena.Slab[int32]
}

// NewCombined builds a combined evaluator for the fragment rooted at
// root. Dynamic dependency information is computed only for spine
// nodes, which the paper's measurements show is a small fraction of the
// tree ("less than N percent of the attributes are evaluated
// dynamically", §4.1).
func NewCombined(a *ag.Analysis, root *tree.Node, hooks Hooks) *Combined {
	c := &Combined{a: a, childOf: make(map[*tree.Node]int32)}
	c.g.init(root, a.G.MaxRuleArgs(), hooks)
	c.st = NewStatic(a, Hooks{Charge: hooks.Charge})

	spine := tree.Spine(root)
	if len(spine) == 0 {
		// Entirely local fragment: pure static evaluation, gated on the
		// root's inherited phases ("all bottom subtrees are evaluated
		// entirely statically", §4.1).
		c.rootStatic = true
		c.addStaticChild(root)
		return c
	}
	// Dynamic instances for the rules of every spine node. Children of
	// spine nodes that are off-spine nonterminals become static
	// subtrees; their synthesized attributes are produced by visits.
	// Discovery order is tree (preorder) order, which keeps the drain
	// deterministic.
	var scanned []*tree.Node
	var build func(n *tree.Node)
	build = func(n *tree.Node) {
		if !spine[n] {
			return
		}
		scanned = append(scanned, n)
		c.g.scanNodeRules(n)
		for _, ch := range n.Children {
			switch {
			case ch.Remote, ch.Sym.Terminal:
			case spine[ch]:
				build(ch)
			default:
				c.addStaticChild(ch)
			}
		}
	}
	build(root)
	c.g.finishBuild(scanned)
	// An inherited attribute of a static child's root may enable its
	// next static visit.
	c.g.onInhAvail = func(n *tree.Node, attr int) {
		if idx, ok := c.childOf[n]; ok {
			sc := &c.kids[idx]
			ph := c.a.VisitOf(n.Sym, attr)
			sc.pendingInh[ph-1]--
			c.runStaticChild(sc, false)
		}
	}
	return c
}

func (c *Combined) addStaticChild(n *tree.Node) {
	phases := c.a.Phases(n.Sym)
	sc := staticChild{node: n, nextVisit: 1, pendingInh: c.inhSlab.Make(len(phases))}
	for v, ph := range phases {
		sc.pendingInh[v] = int32(len(ph.Inh))
	}
	c.childOf[n] = int32(len(c.kids))
	c.kids = append(c.kids, sc)
}

// Run evaluates everything that is ready: dynamic spine instances in
// topological order, and static visits as their input phases complete.
// It returns the number of dynamic instances evaluated by this call;
// if the fragment depends on remote attributes, Run must be
// interleaved with Supply until Done reports true.
func (c *Combined) Run() int {
	if c.rootStatic {
		c.runStaticChild(&c.kids[0], true)
		return 0
	}
	c.drainStaticChildren()
	return c.g.run()
}

// drainStaticChildren starts visits on static children whose first
// phases need no inherited attributes. Children are stored in tree
// order, so the drain is deterministic.
func (c *Combined) drainStaticChildren() {
	for i := range c.kids {
		c.runStaticChild(&c.kids[i], false)
	}
}

// runStaticChild runs every static visit whose inherited phase is
// complete, making the corresponding synthesized phases available to
// the dynamic graph (or, for a fully static fragment root, to the
// parent evaluator via OnRootSyn).
func (c *Combined) runStaticChild(sc *staticChild, isRoot bool) {
	phases := c.a.Phases(sc.node.Sym)
	for sc.nextVisit <= len(phases) && sc.pendingInh[sc.nextVisit-1] == 0 {
		v := sc.nextVisit
		sc.nextVisit++
		c.st.Visit(sc.node, v)
		for _, ai := range phases[v-1].Syn {
			val := sc.node.Attrs[ai]
			if isRoot {
				if c.g.hooks.OnRootSyn != nil {
					c.g.hooks.OnRootSyn(ai, val)
				}
				continue
			}
			if i, ok := c.g.lookup(sc.node, ai); ok && c.g.infos[i].present && !c.g.infos[i].avail {
				c.g.markAvail(i, val)
			}
		}
	}
}

// Supply injects a remotely computed attribute value: a synthesized
// attribute of a remote leaf or an inherited attribute of the fragment
// root.
func (c *Combined) Supply(n *tree.Node, attr int, v ag.Value) {
	n.Attrs[attr] = v
	c.g.stats.Supplied++
	c.g.hooks.charge(CostSupply)
	if c.rootStatic {
		if n != c.g.root {
			panic(fmt.Sprintf("eval: Supply(%s) to fully static fragment rooted at %s", n.Sym, c.g.root.Sym))
		}
		ph := c.a.VisitOf(n.Sym, attr)
		c.kids[0].pendingInh[ph-1]--
		return
	}
	i, ok := c.g.lookup(n, attr)
	if !ok || !c.g.infos[i].present || c.g.infos[i].avail {
		return
	}
	c.g.markAvail(i, v)
}

// Done reports whether all local attribute instances are evaluated.
func (c *Combined) Done() bool {
	if c.rootStatic {
		return c.kids[0].nextVisit > len(c.a.Phases(c.g.root.Sym))
	}
	if c.g.evaluated != c.g.defined {
		return false
	}
	for i := range c.kids {
		if c.kids[i].nextVisit <= len(c.a.Phases(c.kids[i].node.Sym)) {
			return false
		}
	}
	return true
}

// Blocked lists blocked dynamic instances for deadlock diagnostics.
func (c *Combined) Blocked() []string { return c.g.blocked() }

// Stats returns evaluation statistics, merging the static visits run on
// off-spine subtrees with the dynamic spine evaluation.
func (c *Combined) Stats() Stats {
	s := c.g.stats
	s.Add(c.st.Stats())
	return s
}
