package eval

import (
	"fmt"

	"pag/internal/ag"
	"pag/internal/tree"
)

// staticChild drives static evaluation of one subtree hanging off the
// dynamic spine: static visit v may run once all inherited attributes
// of the subtree root's phases 1..v have been computed dynamically.
// Running visit v makes the phase-v synthesized attributes available to
// the dynamic graph — this encodes exactly the transitive dependencies
// "precomputed by the static evaluator generator" that paper §2.4 says
// are entered into the dynamic dependency graph.
type staticChild struct {
	node       *tree.Node
	nextVisit  int   // next visit to run, 1-based
	pendingInh []int // per phase: inherited attrs not yet available
}

// Combined is the paper's combined static/dynamic evaluator (§2.4,
// Figure 4): nodes on a path from the fragment root to a remote leaf
// (the spine) are evaluated dynamically; every subtree hanging off the
// spine — in particular every bottom fragment — is evaluated by the
// static ordered evaluator, with no dependency analysis at all.
type Combined struct {
	a     *ag.Analysis
	root  *tree.Node
	hooks Hooks
	st    *Static

	// rootStatic is non-nil when the fragment has no remote leaves:
	// the entire fragment is one static subtree driven by the arrival
	// of the root's inherited phases.
	rootStatic *staticChild

	insts     map[inst]*instInfo
	order     []inst
	children  map[*tree.Node]*staticChild
	ready     []inst
	readyPrio []inst
	stats     Stats
	defined   int
	evaluated int
}

// NewCombined builds a combined evaluator for the fragment rooted at
// root. Dynamic dependency information is computed only for spine
// nodes, which the paper's measurements show is a small fraction of the
// tree ("less than N percent of the attributes are evaluated
// dynamically", §4.1).
func NewCombined(a *ag.Analysis, root *tree.Node, hooks Hooks) *Combined {
	c := &Combined{
		a:        a,
		root:     root,
		hooks:    hooks,
		insts:    make(map[inst]*instInfo),
		children: make(map[*tree.Node]*staticChild),
	}
	c.st = NewStatic(a, Hooks{Charge: hooks.Charge})

	spine := tree.Spine(root)
	if len(spine) == 0 {
		// Entirely local fragment: pure static evaluation, gated on the
		// root's inherited phases ("all bottom subtrees are evaluated
		// entirely statically", §4.1).
		c.rootStatic = c.newStaticChild(root)
		return c
	}
	// Dynamic instances for the rules of every spine node. Children of
	// spine nodes that are off-spine nonterminals become static
	// subtrees; their synthesized attributes are produced by visits.
	var build func(n *tree.Node)
	build = func(n *tree.Node) {
		if !spine[n] {
			return
		}
		c.addNodeRules(n)
		for _, ch := range n.Children {
			switch {
			case ch.Remote, ch.Sym.Terminal:
			case spine[ch]:
				build(ch)
			default:
				c.children[ch] = c.newStaticChild(ch)
			}
		}
	}
	build(root)
	for _, key := range c.order {
		if info := c.insts[key]; info.remaining == 0 {
			c.push(key)
		}
	}
	return c
}

func (c *Combined) newStaticChild(n *tree.Node) *staticChild {
	phases := c.a.Phases(n.Sym)
	sc := &staticChild{node: n, nextVisit: 1, pendingInh: make([]int, len(phases))}
	for v, ph := range phases {
		sc.pendingInh[v] = len(ph.Inh)
	}
	return sc
}

func (c *Combined) info(i inst) *instInfo {
	if in, ok := c.insts[i]; ok {
		return in
	}
	in := &instInfo{}
	c.insts[i] = in
	c.stats.GraphNodes++
	c.hooks.charge(CostGraphNode)
	return in
}

func (c *Combined) addNodeRules(n *tree.Node) {
	p := n.Prod
	for ri := range p.Rules {
		r := &p.Rules[ri]
		t := resolve(n, r.Target)
		ti := c.info(t)
		ti.rule = r
		ti.home = n
		c.defined++
		c.order = append(c.order, t)
		for _, dep := range r.Deps {
			di := resolve(n, dep)
			if di.n.Sym.Terminal {
				continue // scanner-supplied, always available
			}
			dinfo := c.info(di)
			dinfo.dependents = append(dinfo.dependents, t)
			ti.remaining++
			c.stats.GraphEdges++
			c.hooks.charge(CostGraphEdge)
		}
	}
}

func (c *Combined) push(i inst) {
	if i.n.Sym.Attrs[i.a].Priority && !c.hooks.NoPriority {
		c.readyPrio = append(c.readyPrio, i)
	} else {
		c.ready = append(c.ready, i)
	}
}

func (c *Combined) pop() (inst, bool) {
	if len(c.readyPrio) > 0 {
		i := c.readyPrio[0]
		c.readyPrio = c.readyPrio[1:]
		return i, true
	}
	if len(c.ready) > 0 {
		i := c.ready[0]
		c.ready = c.ready[1:]
		return i, true
	}
	return inst{}, false
}

// Run evaluates everything that is ready: dynamic spine instances in
// topological order, and static visits as their input phases complete.
// It returns the number of dynamic instances evaluated by this call;
// if the fragment depends on remote attributes, Run must be
// interleaved with Supply until Done reports true.
func (c *Combined) Run() int {
	if c.rootStatic != nil {
		c.runStaticChild(c.rootStatic, true)
		return 0
	}
	c.drainStaticChildren()
	count := 0
	for {
		i, ok := c.pop()
		if !ok {
			return count
		}
		c.evaluate(i)
		count++
	}
}

// drainStaticChildren starts visits on static children whose first
// phases need no inherited attributes.
func (c *Combined) drainStaticChildren() {
	// Children are discovered via spine rules; iterate in tree order
	// for determinism.
	c.root.Walk(func(n *tree.Node) {
		if sc, ok := c.children[n]; ok {
			c.runStaticChild(sc, false)
		}
	})
}

func (c *Combined) evaluate(i inst) {
	info := c.insts[i]
	args := make([]ag.Value, len(info.rule.Deps))
	for k, dep := range info.rule.Deps {
		args[k] = resolve(info.home, dep).value()
	}
	v := info.rule.Eval(args)
	i.n.Attrs[i.a] = v
	c.hooks.charge(info.rule.SimCost(args) + CostSchedule)
	c.stats.DynamicEvals++
	c.evaluated++
	c.markAvail(i, info, v)
}

func (c *Combined) markAvail(i inst, info *instInfo, v ag.Value) {
	info.avail = true
	attr := i.n.Sym.Attrs[i.a]
	if i.n.Remote && attr.Kind == ag.Inherited && c.hooks.OnRemoteInh != nil {
		c.hooks.OnRemoteInh(i.n, i.a, v)
	}
	if i.n == c.root && attr.Kind == ag.Synthesized && c.hooks.OnRootSyn != nil {
		c.hooks.OnRootSyn(i.a, v)
	}
	// An inherited attribute of a static child may enable its next
	// static visit.
	if sc, ok := c.children[i.n]; ok && attr.Kind == ag.Inherited {
		ph := c.a.VisitOf(i.n.Sym, i.a)
		sc.pendingInh[ph-1]--
		c.runStaticChild(sc, false)
	}
	for _, dep := range info.dependents {
		dinfo := c.insts[dep]
		dinfo.remaining--
		if dinfo.remaining == 0 && dinfo.rule != nil {
			c.push(dep)
		}
	}
}

// runStaticChild runs every static visit whose inherited phase is
// complete, making the corresponding synthesized phases available to
// the dynamic graph (or, for a fully static fragment root, to the
// parent evaluator via OnRootSyn).
func (c *Combined) runStaticChild(sc *staticChild, isRoot bool) {
	phases := c.a.Phases(sc.node.Sym)
	for sc.nextVisit <= len(phases) && sc.pendingInh[sc.nextVisit-1] == 0 {
		v := sc.nextVisit
		sc.nextVisit++
		c.st.Visit(sc.node, v)
		for _, ai := range phases[v-1].Syn {
			val := sc.node.Attrs[ai]
			if isRoot {
				if c.hooks.OnRootSyn != nil {
					c.hooks.OnRootSyn(ai, val)
				}
				continue
			}
			i := inst{sc.node, ai}
			if info, ok := c.insts[i]; ok && !info.avail {
				c.markAvail(i, info, val)
			}
		}
	}
}

// Supply injects a remotely computed attribute value: a synthesized
// attribute of a remote leaf or an inherited attribute of the fragment
// root.
func (c *Combined) Supply(n *tree.Node, attr int, v ag.Value) {
	n.Attrs[attr] = v
	c.stats.Supplied++
	c.hooks.charge(CostSupply)
	if c.rootStatic != nil {
		if n != c.root {
			panic(fmt.Sprintf("eval: Supply(%s) to fully static fragment rooted at %s", n.Sym, c.root.Sym))
		}
		ph := c.a.VisitOf(n.Sym, attr)
		c.rootStatic.pendingInh[ph-1]--
		return
	}
	i := inst{n, attr}
	info, ok := c.insts[i]
	if !ok || info.avail {
		return
	}
	c.markAvail(i, info, v)
}

// Done reports whether all local attribute instances are evaluated.
func (c *Combined) Done() bool {
	if c.rootStatic != nil {
		return c.rootStatic.nextVisit > len(c.a.Phases(c.root.Sym))
	}
	if c.evaluated != c.defined {
		return false
	}
	for _, sc := range c.children {
		if sc.nextVisit <= len(c.a.Phases(sc.node.Sym)) {
			return false
		}
	}
	return true
}

// Blocked lists blocked dynamic instances for deadlock diagnostics.
func (c *Combined) Blocked() []string {
	var out []string
	for _, key := range c.order {
		if info := c.insts[key]; !info.avail {
			out = append(out, fmt.Sprintf("%s (missing %d)", key, info.remaining))
		}
	}
	return out
}

// Stats returns evaluation statistics, merging the static visits run on
// off-spine subtrees with the dynamic spine evaluation.
func (c *Combined) Stats() Stats {
	s := c.stats
	s.Add(c.st.Stats())
	return s
}
