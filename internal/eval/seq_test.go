package eval_test

import (
	"testing"

	"pag/internal/eval"
	"pag/internal/exprlang"
	"pag/internal/symtab"
	"pag/internal/tree"
)

// TestTwoEvaluatorsOverSameFragment pins down an edge of the flat
// instance tables: constructing a second evaluator over the same
// subtree renumbers the nodes' Seq workspace, and the first evaluator
// must fall back to its own numbering (side map) instead of silently
// dropping Supply calls — which would leave it blocked forever.
func TestTwoEvaluatorsOverSameFragment(t *testing.T) {
	l := exprlang.MustNew()
	root, err := l.Parse(exprlang.Generate(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	var block *tree.Node
	root.Walk(func(n *tree.Node) {
		if block == nil && n.Sym.Name == "block" {
			block = n
		}
	})
	if block == nil {
		t.Fatal("generated source has no block subtree")
	}
	stabAttr := block.Sym.AttrIndex("stab")

	d1 := eval.NewDynamic(l.G, block, eval.Hooks{})
	d1.Run()
	if d1.Done() {
		t.Fatal("fragment completed before its inherited attribute arrived")
	}
	// The rival evaluator overwrites every Seq in the subtree.
	d2 := eval.NewDynamic(l.G, block, eval.Hooks{})
	_ = d2

	d1.Supply(block, stabAttr, symtab.New())
	d1.Run()
	if !d1.Done() {
		t.Fatalf("first evaluator lost its instance table to the second; blocked: %v", d1.Blocked())
	}
}
