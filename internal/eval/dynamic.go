package eval

import (
	"pag/internal/ag"
	"pag/internal/tree"
)

// Dynamic is the purely dynamic evaluator of paper §2.3 / Figure 1: it
// builds the complete attribute dependency graph of its fragment, then
// evaluates attributes in topological order as they become ready.
// Attributes computed by other evaluators (synthesized attributes of
// remote leaves; inherited attributes of the fragment root) are marked
// unavailable until supplied over the network. The graph lives in a
// flat instance table (see graph), so the evaluation loop itself is
// allocation-free.
type Dynamic struct {
	g graph
}

// NewDynamic builds the dependency graph for the fragment rooted at
// root ("dependency analysis", Figure 1). This is the expensive step
// that static evaluation avoids; its simulated cost is charged here.
func NewDynamic(gr *ag.Grammar, root *tree.Node, hooks Hooks) *Dynamic {
	d := &Dynamic{}
	d.g.init(root, gr.MaxRuleArgs(), hooks)
	var scanned []*tree.Node
	root.Walk(func(n *tree.Node) {
		switch {
		case n.Remote, n.Sym.Terminal:
			// Interface instances are registered on demand by the scan.
		default:
			scanned = append(scanned, n)
			d.g.scanNodeRules(n)
		}
	})
	// Link dependents and seed the ready queue in deterministic (tree)
	// order. Remote-leaf synthesized attributes and fragment-root
	// inherited attributes stay unavailable until supplied over the
	// network.
	d.g.finishBuild(scanned)
	return d
}

// Run evaluates every ready attribute instance, in topological order,
// until the worklist drains. It returns the number of instances
// evaluated. If the fragment depends on remote attributes, Run must be
// interleaved with Supply until Done reports true.
func (d *Dynamic) Run() int { return d.g.run() }

// Supply injects an attribute value computed by another evaluator: a
// synthesized attribute of a remote leaf, or an inherited attribute of
// the fragment root. The caller should Run afterwards.
func (d *Dynamic) Supply(n *tree.Node, attr int, v ag.Value) {
	i, ok := d.g.lookup(n, attr)
	if !ok || !d.g.infos[i].present {
		// Nothing in this fragment depends on the value; record it
		// anyway for completeness.
		n.Attrs[attr] = v
		return
	}
	if d.g.infos[i].avail {
		return
	}
	n.Attrs[attr] = v
	d.g.stats.Supplied++
	d.g.hooks.charge(CostSupply)
	d.g.markAvail(i, v)
}

// Done reports whether every locally defined attribute instance has
// been evaluated.
func (d *Dynamic) Done() bool { return d.g.evaluated == d.g.defined }

// Pending returns how many defined instances are still blocked.
func (d *Dynamic) Pending() int { return d.g.defined - d.g.evaluated }

// Blocked lists blocked instances (for deadlock diagnostics).
func (d *Dynamic) Blocked() []string { return d.g.blocked() }

// Stats returns evaluation statistics.
func (d *Dynamic) Stats() Stats { return d.g.stats }
