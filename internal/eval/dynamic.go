package eval

import (
	"fmt"

	"pag/internal/ag"
	"pag/internal/tree"
)

// instInfo is one dependency-graph node of the dynamic evaluator.
type instInfo struct {
	rule       *ag.Rule   // rule defining this instance; nil for inputs
	home       *tree.Node // node owning the defining production
	remaining  int        // dependencies not yet available
	dependents []inst     // instances unblocked when this one arrives
	avail      bool
}

// Dynamic is the purely dynamic evaluator of paper §2.3 / Figure 1: it
// builds the complete attribute dependency graph of its fragment, then
// evaluates attributes in topological order as they become ready.
// Attributes computed by other evaluators (synthesized attributes of
// remote leaves; inherited attributes of the fragment root) are marked
// unavailable until supplied over the network.
type Dynamic struct {
	g     *ag.Grammar
	root  *tree.Node
	hooks Hooks
	stats Stats

	insts     map[inst]*instInfo
	order     []inst // defined instances in tree order, for determinism
	ready     []inst // normal ready queue (FIFO)
	readyPrio []inst // priority attributes jump the queue (paper §4.3)
	defined   int    // instances with a defining rule
	evaluated int
}

// NewDynamic builds the dependency graph for the fragment rooted at
// root ("dependency analysis", Figure 1). This is the expensive step
// that static evaluation avoids; its simulated cost is charged here.
func NewDynamic(g *ag.Grammar, root *tree.Node, hooks Hooks) *Dynamic {
	d := &Dynamic{
		g:     g,
		root:  root,
		hooks: hooks,
		insts: make(map[inst]*instInfo),
	}
	root.Walk(func(n *tree.Node) {
		switch {
		case n.Remote, n.Sym.Terminal:
			// Interface instances created on demand below.
		default:
			d.addNodeRules(n)
		}
	})
	// Seed the ready queue in deterministic (tree) order. Remote-leaf
	// synthesized attributes and fragment-root inherited attributes
	// stay unavailable until supplied over the network.
	for _, key := range d.order {
		if info := d.insts[key]; info.remaining == 0 {
			d.push(key)
		}
	}
	return d
}

func (d *Dynamic) info(i inst) *instInfo {
	if in, ok := d.insts[i]; ok {
		return in
	}
	in := &instInfo{}
	d.insts[i] = in
	d.stats.GraphNodes++
	d.hooks.charge(CostGraphNode)
	return in
}

func (d *Dynamic) addNodeRules(n *tree.Node) {
	p := n.Prod
	for ri := range p.Rules {
		r := &p.Rules[ri]
		t := resolve(n, r.Target)
		ti := d.info(t)
		ti.rule = r
		ti.home = n
		d.defined++
		d.order = append(d.order, t)
		for _, dep := range r.Deps {
			di := resolve(n, dep)
			if di.n.Sym.Terminal {
				// Scanner-supplied attribute: preset before evaluation
				// starts, so it never appears in the dependency graph.
				continue
			}
			dinfo := d.info(di)
			dinfo.dependents = append(dinfo.dependents, t)
			ti.remaining++
			d.stats.GraphEdges++
			d.hooks.charge(CostGraphEdge)
		}
	}
}

func (d *Dynamic) push(i inst) {
	if i.n.Sym.Attrs[i.a].Priority && !d.hooks.NoPriority {
		d.readyPrio = append(d.readyPrio, i)
	} else {
		d.ready = append(d.ready, i)
	}
}

func (d *Dynamic) pop() (inst, bool) {
	if len(d.readyPrio) > 0 {
		i := d.readyPrio[0]
		d.readyPrio = d.readyPrio[1:]
		return i, true
	}
	if len(d.ready) > 0 {
		i := d.ready[0]
		d.ready = d.ready[1:]
		return i, true
	}
	return inst{}, false
}

// Run evaluates every ready attribute instance, in topological order,
// until the worklist drains. It returns the number of instances
// evaluated. If the fragment depends on remote attributes, Run must be
// interleaved with Supply until Done reports true.
func (d *Dynamic) Run() int {
	count := 0
	for {
		i, ok := d.pop()
		if !ok {
			return count
		}
		d.evaluate(i)
		count++
	}
}

func (d *Dynamic) evaluate(i inst) {
	info := d.insts[i]
	args := make([]ag.Value, len(info.rule.Deps))
	for k, dep := range info.rule.Deps {
		args[k] = resolve(info.home, dep).value()
	}
	v := info.rule.Eval(args)
	i.n.Attrs[i.a] = v
	d.hooks.charge(info.rule.SimCost(args) + CostSchedule)
	d.stats.DynamicEvals++
	d.evaluated++
	d.markAvail(i, info, v)
}

func (i inst) value() ag.Value { return i.n.Attrs[i.a] }

func (d *Dynamic) markAvail(i inst, info *instInfo, v ag.Value) {
	info.avail = true
	attr := i.n.Sym.Attrs[i.a]
	if i.n.Remote && attr.Kind == ag.Inherited && d.hooks.OnRemoteInh != nil {
		d.hooks.OnRemoteInh(i.n, i.a, v)
	}
	if i.n == d.root && attr.Kind == ag.Synthesized && d.hooks.OnRootSyn != nil {
		d.hooks.OnRootSyn(i.a, v)
	}
	for _, dep := range info.dependents {
		dinfo := d.insts[dep]
		dinfo.remaining--
		if dinfo.remaining == 0 && dinfo.rule != nil {
			d.push(dep)
		}
	}
}

// Supply injects an attribute value computed by another evaluator: a
// synthesized attribute of a remote leaf, or an inherited attribute of
// the fragment root. The caller should Run afterwards.
func (d *Dynamic) Supply(n *tree.Node, attr int, v ag.Value) {
	i := inst{n, attr}
	info, ok := d.insts[i]
	if !ok {
		// Nothing in this fragment depends on the value; record it
		// anyway for completeness.
		n.Attrs[attr] = v
		return
	}
	if info.avail {
		return
	}
	n.Attrs[attr] = v
	d.stats.Supplied++
	d.hooks.charge(CostSupply)
	d.markAvail(i, info, v)
}

// Done reports whether every locally defined attribute instance has
// been evaluated.
func (d *Dynamic) Done() bool { return d.evaluated == d.defined }

// Pending returns how many defined instances are still blocked.
func (d *Dynamic) Pending() int { return d.defined - d.evaluated }

// Blocked lists blocked instances (for deadlock diagnostics).
func (d *Dynamic) Blocked() []string {
	var out []string
	for _, key := range d.order {
		if info := d.insts[key]; !info.avail {
			out = append(out, fmt.Sprintf("%s (missing %d)", key, info.remaining))
		}
	}
	return out
}

// Stats returns evaluation statistics.
func (d *Dynamic) Stats() Stats { return d.stats }
