// Package eval implements the three attribute evaluation strategies of
// the paper: the dynamic evaluator (dependency graph + topological
// worklist, Figure 1), the static ordered evaluator (precomputed visit
// sequences, Figures 2–3), and the combined static/dynamic evaluator
// that is the paper's contribution (Figure 4).
//
// Evaluators operate on one tree fragment. Attribute values crossing
// machine boundaries enter through Supply and leave through the Hooks
// callbacks; the cluster package wires these to the network.
package eval

import (
	"time"

	"pag/internal/ag"
	"pag/internal/tree"
)

// Simulated CPU costs of the evaluator machinery itself, calibrated for
// the ~1 MIPS machines of the paper's testbed. The asymmetry between
// graph costs (paid only by dynamic evaluation) and the static-op cost
// is exactly the paper's "sequential efficiency of static evaluators".
const (
	// CostGraphNode: allocate and initialize one dependency-graph node
	// during dynamic dependency analysis.
	CostGraphNode = 40 * time.Microsecond
	// CostGraphEdge: record one dependency edge.
	CostGraphEdge = 15 * time.Microsecond
	// CostSchedule: topological-sort bookkeeping per evaluated instance.
	CostSchedule = 12 * time.Microsecond
	// CostStaticOp: visit-procedure dispatch per plan operation.
	CostStaticOp = 8 * time.Microsecond
	// CostVisit: procedure-call overhead per child visit.
	CostVisit = 12 * time.Microsecond
	// CostSupply: handling one remotely supplied attribute value.
	CostSupply = 10 * time.Microsecond
)

// Hooks connects an evaluator to its environment.
type Hooks struct {
	// Charge accounts simulated CPU time; nil ignores costs.
	Charge func(d time.Duration)
	// OnRemoteInh fires when an inherited attribute of a remote leaf
	// has been computed locally and must be shipped to the evaluator
	// that owns the corresponding subtree.
	OnRemoteInh func(leaf *tree.Node, attr int, v ag.Value)
	// OnRootSyn fires when a synthesized attribute of the fragment root
	// has been computed and must be shipped to the parent evaluator (or
	// the parser, for the root fragment).
	OnRootSyn func(attr int, v ag.Value)
	// NoPriority disables the priority-attribute fast path (paper §4.3)
	// for ablation experiments: priority attributes queue like any
	// other ready attribute.
	NoPriority bool
}

func (h *Hooks) charge(d time.Duration) {
	if h.Charge != nil {
		h.Charge(d)
	}
}

// Stats summarizes one evaluator run. DynamicEvals+StaticEvals is the
// number of attribute instances this evaluator computed; the paper's
// §4.1 observation is that the combined evaluator keeps
// DynamicEvals/(DynamicEvals+StaticEvals) very small.
type Stats struct {
	DynamicEvals int // instances evaluated via the dependency graph
	StaticEvals  int // instances evaluated by static visit procedures
	GraphNodes   int // dependency-graph nodes built
	GraphEdges   int // dependency-graph edges built
	Supplied     int // attribute values received from other evaluators
}

// DynamicFraction returns the share of attribute instances evaluated
// dynamically.
func (s Stats) DynamicFraction() float64 {
	total := s.DynamicEvals + s.StaticEvals
	if total == 0 {
		return 0
	}
	return float64(s.DynamicEvals) / float64(total)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.DynamicEvals += other.DynamicEvals
	s.StaticEvals += other.StaticEvals
	s.GraphNodes += other.GraphNodes
	s.GraphEdges += other.GraphEdges
	s.Supplied += other.Supplied
}

// FragmentEvaluator is the common surface of the Dynamic and Combined
// evaluators as seen by a parallel runtime: run until blocked, feed
// remotely computed attribute values in, and report completion. Both
// the simulated cluster (internal/cluster) and the real shared-memory
// runtime (internal/parallel) drive fragments through this interface.
// Implementations are not safe for concurrent use; a runtime must
// ensure at most one goroutine drives a given fragment at a time.
type FragmentEvaluator interface {
	// Run evaluates everything currently ready and returns the number
	// of dynamically evaluated instances.
	Run() int
	// Supply injects an attribute value computed by another evaluator.
	Supply(n *tree.Node, attr int, v ag.Value)
	// Done reports whether every local attribute instance is evaluated.
	Done() bool
	// Blocked lists blocked instances for deadlock diagnostics.
	Blocked() []string
	// Stats returns evaluation statistics.
	Stats() Stats
}
