package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one parsed and type-checked package ready for
// analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Error      *struct{ Err string }
}

// goList runs `go list -json=<fields>` in dir and decodes the JSON
// stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// ExportMap compiles patterns (and everything they depend on) and
// returns import path → gc export-data file. The files live in the
// build cache, so repeat calls are cheap and no network is involved.
func ExportMap(dir string, patterns ...string) (map[string]string, error) {
	entries, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// exportImporter resolves imports from an ExportMap via the standard
// gc export-data reader.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates the types.Info maps the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// TypeCheck type-checks already-parsed files as package pkgPath,
// resolving imports from exports.
func TypeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, exports map[string]string) (*types.Package, *types.Info, error) {
	conf := types.Config{
		Importer: exportImporter(fset, exports),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := newInfo()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// LoadPackages parses and type-checks the packages matching patterns
// (go list syntax, e.g. "./...") inside module directory dir. Test
// files are excluded: the invariants under lint live in runtime code.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exports, err := ExportMap(dir, patterns...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, append([]string{"-e", "-json=ImportPath,Dir,GoFiles,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	var errs []error
	for _, t := range targets {
		if t.Error != nil {
			errs = append(errs, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err))
			continue
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			files = append(files, f)
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		info := newInfo()
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %v", t.ImportPath, err))
			continue
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	if len(errs) > 0 {
		return pkgs, errors.Join(errs...)
	}
	return pkgs, nil
}
