package lint_test

import (
	"strings"
	"testing"

	"pag/internal/lint"
	"pag/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/determinism", "example/canon", lint.Determinism)
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/lockdiscipline", "example/runtime", lint.LockDiscipline)
}

func TestSealedIO(t *testing.T) {
	// The analyzer keys on the package path: the fixture poses as a
	// fleet package.
	linttest.Run(t, "testdata/sealedio", "example/internal/fleet", lint.SealedIO)
}

func TestSealedIOIgnoresOtherPackages(t *testing.T) {
	// The same violating fixture under a non-fleet path produces no
	// findings: raw JSON is only a crime on fleet payload paths.
	pkgs, err := lint.LoadPackages(".", "pag/internal/lint")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if ds := lint.Run(pkgs, []*lint.Analyzer{lint.SealedIO}); len(ds) != 0 {
		t.Errorf("sealedio fired outside internal/fleet: %v", ds)
	}
}

// TestLoadPackages exercises the go list -export loader on a real
// module package and checks type information is present.
func TestLoadPackages(t *testing.T) {
	pkgs, err := lint.LoadPackages(".", "pag/internal/tree")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatalf("package loaded without type info: %+v", p)
	}
	if !strings.HasSuffix(p.PkgPath, "internal/tree") {
		t.Errorf("PkgPath = %q", p.PkgPath)
	}
}

func TestLoadPackagesBadPattern(t *testing.T) {
	if _, err := lint.LoadPackages(".", "pag/internal/nonexistent"); err == nil {
		t.Fatal("LoadPackages accepted a nonexistent package")
	}
}
