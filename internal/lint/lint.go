// Package lint is a self-contained static-analysis framework for the
// runtime invariants this codebase's correctness arguments lean on:
// deterministic canonical encodings, lock discipline in the
// evaluation runtime, and sealed fleet wire payloads. It mirrors the
// shape of golang.org/x/tools/go/analysis — Analyzer, Pass, fixture
// tests with // want comments — but is built only on the standard
// library so the module carries no external dependencies: packages
// are loaded via `go list -export` and type-checked against gc export
// data from the build cache.
//
// Three directive comments steer the analyzers:
//
//	//paglint:deterministic   file computes canonical encodings; the
//	                          determinism analyzer applies to it
//	//paglint:sealed          file implements the sealed wire codec;
//	                          raw encoding/json use is expected here
//	//paglint:allow <name>    suppress <name>'s findings on this line
//	                          (same line or the line directly above)
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check over a type-checked
// package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass carries one package through one analyzer. Run reports
// findings via Report; the driver applies //paglint:allow
// suppressions afterwards.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Types    *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Report records one finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileDirective reports whether f carries the file-scoped directive
// //paglint:<name> anywhere in its comments.
func (p *Pass) FileDirective(f *ast.File, name string) bool {
	want := "//paglint:" + name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == want {
				return true
			}
		}
	}
	return false
}

// ObjectOf resolves the use of an identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// CalleeIn resolves a call to a function or method declared in
// package path pkg, returning it, or nil if the call is anything
// else. It sees through selector calls (time.Now, wg.Wait) but not
// through function values.
func (p *Pass) CalleeIn(call *ast.CallExpr, pkg string) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := p.ObjectOf(id).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkg {
		return nil
	}
	return fn
}

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowSet collects //paglint:allow directives: an allow on line N
// suppresses findings on N (trailing comment) and N+1 (comment line
// above the flagged statement). Everything after a "--" is a
// justification for human readers.
func allowSet(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	const prefix = "//paglint:allow "
	set := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				names := text[len(prefix):]
				if i := strings.Index(names, "--"); i >= 0 {
					names = names[:i]
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Fields(names) {
					set[allowKey{pos.Filename, pos.Line, name}] = true
					set[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return set
}

// Run applies every analyzer to every package and returns the
// surviving findings sorted by position. //paglint:allow directives
// are honoured here, so analyzers themselves stay suppression-free.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowSet(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.PkgPath,
				Types:    pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if !allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All is the paglint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Determinism, LockDiscipline, SealedIO}
}
