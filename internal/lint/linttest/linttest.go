// Package linttest runs a lint.Analyzer over a fixture package and
// checks its findings against `// want "regex"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest — a comment
//
//	v := time.Now() // want `time\.Now`
//
// demands exactly one finding on that line whose message matches the
// pattern; any unmatched finding and any unsatisfied want fails the
// test. Fixtures live under testdata/ (invisible to the go tool) and
// are type-checked for real, against gc export data from the build
// cache, so analyzers are tested with the same type information they
// see in production.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pag/internal/lint"
)

// expectation is one want pattern anchored to a file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

// Run analyzes the one-package fixture in dir (as import path
// pkgPath) with analyzer a and checks findings against the fixture's
// want comments. //paglint:allow suppression is applied, so fixtures
// can assert that directives silence findings.
func Run(t *testing.T, dir, pkgPath string, a *lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	var files []*ast.File
	var wants []*expectation
	imports := map[string]bool{}
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
		ws, err := parseWants(fset, f)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	exports := map[string]string{}
	if len(paths) > 0 {
		exports, err = lint.ExportMap(".", paths...)
		if err != nil {
			t.Fatalf("building export map: %v", err)
		}
	}
	tpkg, info, err := lint.TypeCheck(fset, pkgPath, files, exports)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	diags := lint.Run([]*lint.Package{{
		PkgPath: pkgPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}}, []*lint.Analyzer{a})

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: want %q, but no finding matched", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmet want matching d and reports success.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			w.met = true
			return true
		}
	}
	return false
}

// parseWants extracts `// want "p1" "p2"` expectations from f.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(text[len("want "):])
			for rest != "" {
				lit, tail, err := nextString(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, lit, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				rest = strings.TrimSpace(tail)
			}
		}
	}
	return out, nil
}

// nextString parses one leading quoted (double or back) string.
func nextString(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				lit, err = strconv.Unquote(s[:i+1])
				return lit, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated string")
	default:
		return "", "", fmt.Errorf("expected quoted pattern, found %q", s)
	}
}
