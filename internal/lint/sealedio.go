package lint

import (
	"go/ast"
	"strings"
)

// SealedIO enforces the fleet wire-integrity invariant: every RPC
// payload carries a SHA-256 trailer so corruption surfaces as a
// retryable error instead of a silently wrong program. That argument
// holds only if *all* fleet payloads go through the sealed codec
// (sealJSON/unsealJSON in wire.go) — one raw json.Marshal on a wire
// path is an unsealed payload whose corruption is undetectable. So
// inside internal/fleet, any direct use of encoding/json outside a
// file marked //paglint:sealed (the codec's own implementation) is an
// error.
var SealedIO = &Analyzer{
	Name: "sealedio",
	Doc:  "flags raw encoding/json use in fleet code that must use the sealed wire codec",
	Run:  runSealedIO,
}

func runSealedIO(pass *Pass) {
	if !strings.HasSuffix(pass.PkgPath, "internal/fleet") {
		return
	}
	for _, f := range pass.Files {
		if pass.FileDirective(f, "sealed") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/json" {
				return true
			}
			pass.Report(sel.Pos(), "raw encoding/json (%s) on a fleet payload path: use the sealed codec (sealJSON/unsealJSON)", obj.Name())
			return true
		})
	}
}
