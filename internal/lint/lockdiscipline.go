package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockDiscipline flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives,
// selects without a default clause, time.Sleep and
// sync.WaitGroup.Wait. In the evaluation runtime a fragment worker
// that parks on a channel while holding a pool or job mutex deadlocks
// every sibling that needs the same lock — the bug class the
// coordinator's park/wake protocol is specifically structured to
// avoid (unlock first, then park). A select *with* a default is a
// non-blocking poll and is allowed; `defer mu.Unlock()` counts as
// holding the lock to the end of the function.
//
// The analysis is per-function and flow-approximate: it tracks lock
// state along straight-line control flow, takes the intersection of
// states over branches, and treats loop bodies independently. It sees
// through neither function calls nor goroutines — it is a lint for a
// discipline, not a deadlock prover.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flags blocking operations (channel ops, bare selects, sleeps, waits) while a mutex is held",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				w := &lockWalker{pass: pass}
				w.stmts(body.List, lockState{})
			}
			return true // descend: nested FuncLits get their own walk
		})
	}
}

// lockState maps a rendered mutex expression ("j.mu") to the position
// of the Lock call that acquired it.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersectStates keeps only mutexes held on every fall-through path.
func intersectStates(states []lockState) lockState {
	out := states[0].clone()
	for _, s := range states[1:] {
		for k := range out {
			if _, ok := s[k]; !ok {
				delete(out, k)
			}
		}
	}
	return out
}

type lockWalker struct {
	pass *Pass
}

// report emits one finding naming the (first, for determinism) held
// mutex and where it was locked.
func (w *lockWalker) report(pos token.Pos, what string, held lockState) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lock := w.pass.Fset.Position(held[keys[0]])
	w.pass.Report(pos, "%s while %s is held (Lock at line %d)", what, keys[0], lock.Line)
}

// mutexOp matches a statement-level call to a sync.Mutex/RWMutex
// Lock/RLock/Unlock/RUnlock method and returns the rendered receiver
// and the method name.
func (w *lockWalker) mutexOp(e ast.Expr) (key, method string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := w.pass.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	switch recvTypeName(fn) {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// recvTypeName returns the name of a method's receiver type, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkExpr flags blocking constructs inside an expression evaluated
// while held is non-empty. Function literals are skipped — their
// bodies run elsewhere and are walked as functions of their own.
func (w *lockWalker) checkExpr(e ast.Expr, held lockState) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			w.checkCall(n, held)
		}
		return true
	})
}

// checkCall flags known-blocking calls.
func (w *lockWalker) checkCall(call *ast.CallExpr, held lockState) {
	if fn := w.pass.CalleeIn(call, "time"); fn != nil && fn.Name() == "Sleep" {
		w.report(call.Pos(), "time.Sleep", held)
	}
	if fn := w.pass.CalleeIn(call, "sync"); fn != nil && fn.Name() == "Wait" && recvTypeName(fn) == "WaitGroup" {
		w.report(call.Pos(), "sync.WaitGroup.Wait", held)
	}
}

// stmts walks a statement list threading lock state; the bool result
// reports whether the list terminates abruptly (return/branch).
func (w *lockWalker) stmts(list []ast.Stmt, held lockState) (lockState, bool) {
	for _, st := range list {
		var term bool
		held, term = w.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(st ast.Stmt, held lockState) (lockState, bool) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		if key, method, ok := w.mutexOp(x.X); ok {
			held = held.clone()
			switch method {
			case "Lock", "RLock":
				held[key] = x.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return held, false
		}
		w.checkExpr(x.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(x.Pos(), "channel send", held)
		}
		w.checkExpr(x.Value, held)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		// Never blocks.
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end — the
		// state deliberately stays. Other deferred calls run at return
		// time; only their arguments are evaluated here.
		if _, _, ok := w.mutexOp(x.Call); !ok {
			for _, a := range x.Call.Args {
				w.checkExpr(a, held)
			}
		}
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			w.checkExpr(a, held)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.checkExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return w.stmts(x.List, held)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, held)
	case *ast.IfStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		w.checkExpr(x.Cond, held)
		var after []lockState
		if body, term := w.stmts(x.Body.List, held.clone()); !term {
			after = append(after, body)
		}
		if x.Else != nil {
			if els, term := w.stmt(x.Else, held.clone()); !term {
				after = append(after, els)
			}
		} else {
			after = append(after, held)
		}
		if len(after) == 0 {
			return lockState{}, false
		}
		return intersectStates(after), false
	case *ast.ForStmt:
		s := held.clone()
		if x.Init != nil {
			s, _ = w.stmt(x.Init, s)
		}
		w.checkExpr(x.Cond, s)
		if body, term := w.stmts(x.Body.List, s); !term && x.Post != nil {
			w.stmt(x.Post, body)
		}
		return held, false
	case *ast.RangeStmt:
		w.checkExpr(x.X, held)
		w.stmts(x.Body.List, held.clone())
		return held, false
	case *ast.SwitchStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		w.checkExpr(x.Tag, held)
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.checkExpr(e, held)
			}
			w.stmts(cc.Body, held.clone())
		}
		return held, false
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		for _, c := range x.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, held.clone())
		}
		return held, false
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.report(x.Pos(), "select without a default clause", held)
		}
		// The comm operations themselves are the select's blocking
		// semantics (already judged above); only clause bodies are
		// walked.
		for _, c := range x.Body.List {
			w.stmts(c.(*ast.CommClause).Body, held.clone())
		}
		return held, false
	}
	return held, false
}
