package lint

import (
	"go/ast"
	"go/types"
)

// Determinism guards canonical-encoding code. Files that opt in with
// //paglint:deterministic compute content addresses, cache keys or
// wire bytes whose correctness argument is "same input, same bytes,
// on every machine, forever" — tree hashing, fragment-cache
// canonicalisation, the fleet wire codec. Three things silently break
// that property:
//
//   - time.Now (wall-clock leaks into the encoding),
//   - math/rand (process-local randomness leaks in),
//   - appending inside a range over a map (Go randomises map
//     iteration order, so the slice order differs run to run).
//
// A map range that is genuinely order-insensitive (folding into
// another map, or sorted afterwards) carries //paglint:allow
// determinism with a justification.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock, randomness and map-iteration order leaking into canonical encodings",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		if !pass.FileDirective(f, "deterministic") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := pass.CalleeIn(n, "time"); fn != nil && fn.Name() == "Now" {
					pass.Report(n.Pos(), "time.Now in deterministic code: wall-clock time leaks into a canonical encoding")
				}
			case *ast.SelectorExpr:
				if obj := pass.ObjectOf(n.Sel); obj != nil && obj.Pkg() != nil {
					switch obj.Pkg().Path() {
					case "math/rand", "math/rand/v2":
						pass.Report(n.Pos(), "%s.%s in deterministic code: randomness leaks into a canonical encoding", obj.Pkg().Name(), obj.Name())
					}
				}
			case *ast.RangeStmt:
				pass.checkMapRangeAppend(n)
			}
			return true
		})
	}
}

// checkMapRangeAppend flags appends inside a range over a map: the
// element order of the produced slice then depends on Go's randomised
// map iteration order.
func (p *Pass) checkMapRangeAppend(rng *ast.RangeStmt) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isFn := n.(*ast.FuncLit); isFn {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := p.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
				p.Report(call.Pos(), "append inside a range over a map: element order depends on randomised map iteration")
			}
		}
		return true
	})
}
