// No //paglint:deterministic directive: this file is ordinary code
// and may consult the clock and randomness freely.

package fixture

import (
	"math/rand"
	"time"
)

func retryDelay(attempt int) time.Duration {
	base := time.Duration(attempt) * 10 * time.Millisecond
	return base + time.Duration(rand.Intn(5))*time.Millisecond
}

func now() time.Time {
	return time.Now()
}

func keysInAnyOrder(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
