// Seeded violations for the determinism analyzer. This file opts in:
//paglint:deterministic

package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// Seeded: map iteration order leaks into the slice.
func unsortedKeys(attrs map[string]int) []string {
	var keys []string
	for k := range attrs {
		keys = append(keys, k) // want `append inside a range over a map`
	}
	return keys
}

// The same shape, justified: the order is repaired by sorting.
func sortedKeys(attrs map[string]int) []string {
	var keys []string
	for k := range attrs {
		//paglint:allow determinism -- keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Order-insensitive map folding is fine without a directive.
func total(attrs map[string]int) int {
	n := 0
	for _, v := range attrs {
		n += v
	}
	return n
}

// Ranging a slice and appending is always fine.
func double(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}

// Seeded: wall-clock time in a canonical encoding.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic code`
}

// Seeded: process-local randomness in a canonical encoding.
func jitter() int {
	return rand.Intn(8) // want `rand\.Intn in deterministic code`
}
