// Seeded violations: fleet payload code bypassing the sealed codec.

package fleet

import (
	"bytes"
	"encoding/json"
)

type ping struct {
	N int `json:"n"`
}

func encodePing(p ping) ([]byte, error) {
	return json.Marshal(p) // want `raw encoding/json \(Marshal\)`
}

func decodePing(data []byte) (ping, error) {
	var p ping
	err := json.Unmarshal(data, &p) // want `raw encoding/json \(Unmarshal\)`
	return p, err
}

func streamPing(data []byte) (ping, error) {
	var p ping
	dec := json.NewDecoder(bytes.NewReader(data)) // want `raw encoding/json \(NewDecoder\)`
	err := dec.Decode(&p)                         // want `raw encoding/json \(Decode\)`
	return p, err
}
