// The sealed codec implementation itself: the one place raw
// encoding/json is expected.
//paglint:sealed

package fleet

import "encoding/json"

func sealJSON(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(payload, 0x5e), nil
}
