// Seeded violations for the lockdiscipline analyzer, plus the
// park/wake shapes the evaluation runtime actually uses, which must
// stay clean.

package fixture

import (
	"sync"
	"time"
)

type queue struct {
	mu   sync.Mutex
	wake chan struct{}
	work []int
}

// Seeded: sending on an unbuffered channel under the lock deadlocks
// against a receiver that needs the same lock.
func (q *queue) badSend(v int) {
	q.mu.Lock()
	q.work = append(q.work, v)
	q.wake <- struct{}{} // want `channel send while q\.mu is held`
	q.mu.Unlock()
}

// Unlock first, then signal: clean.
func (q *queue) goodSend(v int) {
	q.mu.Lock()
	q.work = append(q.work, v)
	q.mu.Unlock()
	q.wake <- struct{}{}
}

// Seeded: a deferred Unlock holds the lock across the receive.
func (q *queue) badReceive() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	<-q.wake // want `channel receive while q\.mu is held`
	return q.work[0]
}

// Seeded: a select with no default parks while holding the lock.
func (q *queue) badSelect(stop chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `select without a default clause while q\.mu is held`
	case <-q.wake:
	case <-stop:
	}
}

// A select with a default is a non-blocking poll: clean.
func (q *queue) goodPoll() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
		return true
	default:
		return false
	}
}

// Seeded: sleeping with the lock held.
func (q *queue) badSleep() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while q\.mu is held`
	q.mu.Unlock()
}

// Seeded: waiting for a whole group with the lock held.
func (q *queue) badWait(wg *sync.WaitGroup) {
	q.mu.Lock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while q\.mu is held`
	q.mu.Unlock()
}

// The runtime's park/wake shape: every path releases the lock before
// blocking. Clean.
func (q *queue) park() int {
	for {
		q.mu.Lock()
		if len(q.work) > 0 {
			v := q.work[0]
			q.work = q.work[1:]
			q.mu.Unlock()
			return v
		}
		q.mu.Unlock()
		<-q.wake
	}
}

// sync.Cond.Wait is *designed* to be called with its lock held: clean.
func (q *queue) condWait(c *sync.Cond) {
	q.mu.Lock()
	for len(q.work) == 0 {
		c.Wait()
	}
	q.mu.Unlock()
}

// A goroutine launched under the lock runs without it: its body is
// not the lock holder's code. Clean.
func (q *queue) spawn() {
	q.mu.Lock()
	go func() {
		<-q.wake
	}()
	q.mu.Unlock()
}

// Deliberate, justified send under the lock.
func (q *queue) allowedSend(buf chan struct{}) {
	q.mu.Lock()
	//paglint:allow lockdiscipline -- buffered channel sized to the worker count, never blocks
	buf <- struct{}{}
	q.mu.Unlock()
}
