// Package pag is a from-scratch Go reproduction of "Parallel Attribute
// Grammar Evaluation" (Hans-Juergen Boehm and Willy Zwaenepoel, ICDCS
// 1987): a compiler generator that turns one attribute-grammar
// specification into a parallel translator — a sequential parser that
// splits the parse tree, attribute evaluators on separate machines
// exchanging attribute values, and a string librarian assembling the
// generated code from descriptors.
//
// The package is a facade over the implementation packages:
//
//   - Grammar construction and OAG analysis (internal/ag): NewGrammar,
//     Analyze, the attribute and rule declaration helpers.
//   - Parse trees, splitting and linearization (internal/tree).
//   - The three evaluators of the paper (internal/eval): NewDynamic,
//     NewStatic, NewCombined.
//   - The real shared-memory parallel runtime (internal/parallel):
//     NewPool and Pool.Compile (context-first, with metrics, quotas
//     and priorities), or one-shot CompileParallel.
//   - The parallel runtime on a simulated 1987 network multiprocessor
//     (internal/cluster, internal/netsim): CompileSim.
//   - Supporting data structures from §4.3 of the paper: rope strings
//     (internal/rope), applicative symbol tables (internal/symtab).
//
// A complete small language built on this API lives in
// internal/exprlang (the paper's appendix grammar); the full Pascal
// subset compiler of the paper's experiments lives in internal/pascal.
// See examples/ for runnable demonstrations and cmd/benchfig for the
// reproduction of every figure and table.
package pag

import (
	"pag/internal/ag"
	"pag/internal/cas"
	"pag/internal/cluster"
	"pag/internal/eval"
	"pag/internal/netsim"
	"pag/internal/parallel"
	"pag/internal/rope"
	"pag/internal/symtab"
	"pag/internal/trace"
	"pag/internal/tree"
)

// Grammar model (internal/ag).
type (
	// Grammar is a validated attribute grammar.
	Grammar = ag.Grammar
	// GrammarBuilder assembles a Grammar declaratively.
	GrammarBuilder = ag.Builder
	// Symbol is a terminal or nonterminal with attributes.
	Symbol = ag.Symbol
	// Production is a context-free production with semantic rules.
	Production = ag.Production
	// Analysis is the OAG prepass result: visit phases and plans.
	Analysis = ag.Analysis
	// AttrSpec declares one attribute of a symbol.
	AttrSpec = ag.AttrSpec
	// RuleSpec declares one semantic rule.
	RuleSpec = ag.RuleSpec
	// Value is an attribute value.
	Value = ag.Value
	// Codec converts attribute values for network transmission.
	Codec = ag.Codec
)

// NewGrammar starts a grammar definition.
func NewGrammar(name string) *GrammarBuilder { return ag.NewBuilder(name) }

// Analyze runs the ordered-attribute-grammar analysis (Kastens), the
// prepass that enables static and combined evaluation.
func Analyze(g *Grammar) (*Analysis, error) { return ag.Analyze(g) }

// Attribute and rule declaration helpers.
var (
	Syn   = ag.Syn
	Inh   = ag.Inh
	Def   = ag.Def
	Copy  = ag.Copy
	Const = ag.Const
)

// Parse trees (internal/tree).
type (
	// Node is a parse-tree node.
	Node = tree.Node
	// Decomposition is a tree split into separately evaluated fragments.
	Decomposition = tree.Decomposition
	// Planner selects the decomposition planning policy: PlanSize (the
	// legacy size-driven splitter) or PlanCost (grammar-plan cut costs
	// break ties between similarly sized candidates).
	Planner = tree.Planner
	// CutPlan is the grammar-level decomposition plan: per-symbol cut
	// costs from occurrence equivalence classes, a compacted incidence
	// matrix and the static wave schedule.
	CutPlan = ag.CutPlan
)

// Decomposition planners (Options.Planner, DecomposeWith).
const (
	PlanSize = tree.PlanSize
	PlanCost = tree.PlanCost
)

// MinGranularity is the smallest useful split granularity in bytes;
// Pool.Compile rejects smaller explicit values with a GranularityError.
const MinGranularity = tree.MinGranularity

// NewNode creates an interior node; NewTerminal a scanner leaf.
var (
	NewNode     = tree.New
	NewTerminal = tree.NewTerminal
	Decompose   = tree.Decompose
	// DecomposeWith decomposes under an explicit Planner; a PlanCost
	// cost function comes from CutPlan.CostOf.
	DecomposeWith = tree.DecomposeWith
	// SimulateCuts previews the cut points a planner would choose
	// without mutating the tree.
	SimulateCuts = tree.SimulateCuts
	// NewCutPlan computes a grammar's cut plan (analysis may be nil for
	// a conservative plan).
	NewCutPlan = ag.NewCutPlan
)

// ParsePlanner maps "size"/"cost" (and "" = size) to a Planner.
func ParsePlanner(s string) (Planner, error) { return tree.ParsePlanner(s) }

// Evaluators (internal/eval).
type (
	// DynamicEvaluator evaluates via a runtime dependency graph.
	DynamicEvaluator = eval.Dynamic
	// StaticEvaluator evaluates via precomputed visit sequences.
	StaticEvaluator = eval.Static
	// CombinedEvaluator is the paper's contribution: dynamic on the
	// spine to remote subtrees, static everywhere else.
	CombinedEvaluator = eval.Combined
	// EvalHooks connects an evaluator to its environment.
	EvalHooks = eval.Hooks
	// EvalStats counts static/dynamic evaluations.
	EvalStats = eval.Stats
)

// Evaluator constructors.
var (
	NewDynamic  = eval.NewDynamic
	NewStatic   = eval.NewStatic
	NewCombined = eval.NewCombined
)

// Simulated 1987 cluster (internal/cluster, internal/netsim).
type (
	// Job describes one parallel compilation (shared by the simulated
	// and the real runtime).
	Job = cluster.Job
	// SimOptions configures a simulated compilation: machines, mode and
	// optimizations.
	SimOptions = cluster.Options
	// SimResult reports a simulated compilation: virtual-time timings,
	// statistics and the produced program.
	SimResult = cluster.Result
	// Mode selects the evaluation strategy.
	Mode = cluster.Mode
	// Hardware describes the simulated machines and network.
	Hardware = netsim.Config
	// Trace is a machine activity trace (renders as a Gantt chart).
	Trace = trace.Trace
)

// Evaluation modes.
const (
	Combined = cluster.Combined
	Dynamic  = cluster.Dynamic
)

// CompileSim runs one parallel compilation on the simulated network
// multiprocessor — the paper's 1987 testbed in virtual time — and
// returns its result. (It was named Compile before the real runtime
// became the primary path.)
func CompileSim(job Job, opts SimOptions) (*SimResult, error) { return cluster.Run(job, opts) }

// DefaultHardware returns the paper's testbed: SUN-2-class machines on
// a 10 Mbit/s shared Ethernet under a V-System-like message layer.
func DefaultHardware() Hardware { return netsim.DefaultHardware() }

// Real multicore runtime (internal/parallel). This is the primary
// path: NewPool + Pool.Compile for services, CompileParallel for
// one-shot runs, CompileSim for the paper's virtual-time testbed.
type (
	// Options configures the shared-memory parallel runtime, including
	// the job's Client identity and admission Priority.
	Options = parallel.Options
	// Result reports a real parallel compilation: wall time,
	// statistics and the produced program.
	Result = parallel.Result
	// Metrics is a Pool's full observability snapshot: activity and
	// cache counters, admission rejections and latency histograms.
	// Encode it for scraping with its WritePrometheus method.
	Metrics = parallel.Metrics
	// Histogram is a point-in-time latency histogram snapshot inside
	// Metrics, with a Quantile estimator.
	Histogram = parallel.Histogram
	// Priority is a job's admission class: PriorityHigh (default,
	// interactive) or PriorityLow (batch, yields admission under load).
	Priority = parallel.Priority
	// QuotaError is the typed form of an over-quota rejection (wraps
	// ErrQuotaExceeded; carries the client and limit).
	QuotaError = parallel.QuotaError
	// GranularityError reports an explicit Options.Granularity below
	// MinGranularity.
	GranularityError = parallel.GranularityError
	// PlanStats reports the decomposition planning of one compilation:
	// planner, plan time, chosen width, balance and cut-cost accounting.
	PlanStats = parallel.PlanStats
	// Pool is a persistent compile service: one long-lived worker pool
	// serving many concurrent compile jobs, each isolated in its own
	// fragment set and librarian handle namespace, with a
	// content-addressed fragment cache replaying recompilations of
	// identical sources without re-evaluating any attributes — and,
	// incrementally, replaying the unaffected fragments of EDITED
	// sources (each fragment's recording is validated against the
	// inbound attribute values it actually receives, so inherited
	// inputs that changed demote it to live evaluation instead).
	Pool = parallel.Pool
	// PoolOptions configures a Pool: workers, max in-flight jobs, the
	// admission-queue depth, the per-client quota (ClientQuota), the
	// fragment-cache byte budget (CacheBytes; 0 = DefaultCacheBytes,
	// negative disables caching) and the optional persistent cache
	// store (DiskCache, from OpenDiskCache).
	PoolOptions = parallel.PoolOptions
	// DiskCache is the crash-safe on-disk store behind
	// PoolOptions.DiskCache: whole-job recordings spilled write-behind
	// and replayed byte-identically across pool (and process)
	// restarts. One directory may be shared by many pools/processes.
	DiskCache = cas.Store
	// PoolStats is a snapshot of a Pool's activity, including fragment
	// cache hit/miss/eviction counters and the incremental-replay
	// counters (partial hits, partial jobs, demotions).
	PoolStats = parallel.PoolStats
	// RemoteEvaluator is the distributed backend a Pool routes admitted
	// jobs to when PoolOptions.Remote is set; internal/fleet provides
	// the production implementation (a health-checked worker fleet with
	// retry/requeue and graceful degradation to local evaluation).
	RemoteEvaluator = parallel.RemoteEvaluator
	// FleetStats is the distributed backend's health and fault-path
	// snapshot inside Metrics: worker states, remote/local fragment
	// counts, retries, requeues, corrupt responses, degraded jobs.
	FleetStats = parallel.FleetStats
)

// DefaultCacheBytes is the fragment-cache budget a Pool uses when
// PoolOptions.CacheBytes is zero.
const DefaultCacheBytes = parallel.DefaultCacheBytes

// OpenDiskCache opens (creating, or wiping on a layout-version
// mismatch) dir as a persistent fragment-cache store for
// PoolOptions.DiskCache. maxBytes bounds the directory's size with
// oldest-first GC (0 picks a default, negative disables the bound).
// Stale or damaged entries are skipped and rewritten, never misread.
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	return parallel.OpenDiskCache(dir, maxBytes)
}

// Admission classes (Options.Priority).
const (
	PriorityHigh = parallel.PriorityHigh
	PriorityLow  = parallel.PriorityLow
)

// Pool failure modes (errors.Is-able).
var (
	// ErrPoolClosed reports a Compile on a closed Pool.
	ErrPoolClosed = parallel.ErrPoolClosed
	// ErrOverloaded reports a full admission queue.
	ErrOverloaded = parallel.ErrOverloaded
	// ErrQuotaExceeded reports a client at its per-client quota
	// (PoolOptions.ClientQuota); errors.As with *QuotaError for detail.
	ErrQuotaExceeded = parallel.ErrQuotaExceeded
)

// ParsePriority maps "high"/"low" (and "" = high) to a Priority.
func ParsePriority(s string) (Priority, error) { return parallel.ParsePriority(s) }

// NewPool starts a persistent compile pool. The pool owns the worker
// goroutines and work-stealing scheduler; many Pool.Compile calls may
// run concurrently on it, subject to the configured admission bounds
// (max in-flight, queue depth, per-client quotas, priority classes),
// and each job's output is byte-identical to running it alone.
// Pool.Compile(ctx, job, opts) is the one blessed entry point of the
// runtime: the context carries cancellation and deadlines into the
// evaluation itself. Close the pool when done; Pool.Metrics exposes
// the observability snapshot.
func NewPool(opts PoolOptions) *Pool { return parallel.NewPool(opts) }

// CompileParallel runs one compilation on the real shared-memory
// parallel runtime: the tree is decomposed exactly as in CompileSim,
// but fragments are evaluated by a pool of worker goroutines on real
// CPU cores, attribute values travel between fragments over
// per-fragment mailboxes, and code strings are assembled by a
// concurrent string librarian. Given opts.Workers == Machines, the
// produced program is byte-identical to CompileSim's. It is a thin
// wrapper over a one-shot Pool; services compiling repeatedly should
// hold a NewPool and call Pool.Compile.
func CompileParallel(job Job, opts Options) (*Result, error) {
	return parallel.Run(job, opts)
}

// Support libraries (§4.3 of the paper).
type (
	// Rope is a binary-tree string with O(1) concatenation.
	Rope = rope.Rope
	// Code is the librarian-aware code-attribute string type.
	Code = rope.Code
	// SymTable is an applicative symbol table.
	SymTable = symtab.Table
)

// Rope and symbol-table constructors.
var (
	Leaf      = rope.Leaf
	Concat    = rope.Concat
	CatCode   = rope.CatCode
	NewSymTab = symtab.New
	Text      = rope.Text
	Textf     = rope.Textf
)
