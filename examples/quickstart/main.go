// Quickstart: the paper's appendix example end to end.
//
// It builds the appendix attribute grammar (arithmetic expressions with
// let-bound constants), evaluates the paper's example expression
// `let x = 2 in 1 + 3*x ni` with all three evaluators, and then runs
// the same translation as a parallel compilation on three simulated
// machines, printing what travelled over the network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pag"
	"pag/internal/exprlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	lang := exprlang.MustNew()
	analysis, err := pag.Analyze(lang.G)
	if err != nil {
		log.Fatal(err)
	}

	const src = "let x = 2 in 1 + 3*x ni"
	fmt.Printf("source: %s\n\n", src)

	// 1. Dynamic evaluation: dependency graph + topological order.
	root, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	dyn := pag.NewDynamic(lang.G, root, pag.EvalHooks{})
	dyn.Run()
	fmt.Printf("dynamic evaluator:  value = %v (%d attribute instances, %d graph edges)\n",
		root.Attrs[exprlang.AttrValue], dyn.Stats().DynamicEvals, dyn.Stats().GraphEdges)

	// 2. Static evaluation: precomputed visit sequences, no dependency
	// analysis at evaluation time.
	root2, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	st := pag.NewStatic(analysis, pag.EvalHooks{})
	if err := st.EvaluateTree(root2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static evaluator:   value = %v (%d static evaluations)\n",
		root2.Attrs[exprlang.AttrValue], st.Stats().StaticEvals)

	// 3. Parallel compilation on three simulated 1987 machines.
	bigSrc := exprlang.Generate(6, 12) // six let-blocks, splittable
	rootBig, err := lang.Parse(bigSrc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pag.CompileSim(pag.Job{
		G:    lang.G,
		A:    analysis,
		Root: rootBig,
		Lex:  lang.TerminalAttrs,
	}, pag.SimOptions{Machines: 3, Mode: pag.Combined})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel run of %q...\n", bigSrc[:34]+"...")
	fmt.Printf("  3 machines, %d fragments %v\n", res.Frags, res.Decomp.Sizes())
	fmt.Printf("  value = %v, simulated time %v, %d messages / %d bytes on the wire\n",
		res.RootAttrs[exprlang.AttrValue], res.EvalTime, res.Messages, res.Bytes)
	fmt.Printf("  %.1f%% of attribute instances evaluated dynamically (spine only)\n\n",
		res.Stats.DynamicFraction()*100)
	fmt.Print(res.Trace.Gantt(84))
}
