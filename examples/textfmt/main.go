// Textfmt demonstrates the paper's broader claim (§1) that attribute
// grammars cover "a wide variety of language translation problems ...
// text formatting, proof checking, assembling": it defines a paragraph
// formatter as an attribute grammar — inherited line width flowing
// down, greedily filled text flowing up — and runs it in parallel on
// the simulated cluster, one paragraph subtree per machine.
//
//	go run ./examples/textfmt
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"strings"

	"pag"
	"pag/internal/tree"
)

// stringCodec ships string attribute values across machines.
type stringCodec struct{}

func (stringCodec) Encode(v pag.Value) ([]byte, error) { return []byte(v.(string)), nil }
func (stringCodec) Decode(d []byte) (pag.Value, error) { return string(d), nil }

// intCodec ships the inherited width.
type intCodec struct{}

func (intCodec) Encode(v pag.Value) ([]byte, error) {
	return binary.AppendVarint(nil, int64(v.(int))), nil
}

func (intCodec) Decode(d []byte) (pag.Value, error) {
	n, k := binary.Varint(d)
	if k <= 0 {
		return nil, fmt.Errorf("bad int")
	}
	return int(n), nil
}

// fill greedily breaks words into lines of at most width characters.
func fill(words []string, width int) string {
	var b strings.Builder
	col := 0
	for _, w := range words {
		switch {
		case col == 0:
			b.WriteString(w)
			col = len(w)
		case col+1+len(w) <= width:
			b.WriteByte(' ')
			b.WriteString(w)
			col += 1 + len(w)
		default:
			b.WriteByte('\n')
			b.WriteString(w)
			col = len(w)
		}
	}
	return b.String()
}

// formatter bundles the text-formatting attribute grammar.
type formatter struct {
	g      *pag.Grammar
	a      *pag.Analysis
	word   *pag.Symbol
	doc    *pag.Symbol
	plist  *pag.Symbol
	para   *pag.Symbol
	words  *pag.Symbol
	pDoc   *pag.Production
	pCons  *pag.Production
	pOne   *pag.Production
	pPara  *pag.Production
	pWCons *pag.Production
	pWOne  *pag.Production
}

func newFormatter(width int) (*formatter, error) {
	f := &formatter{}
	b := pag.NewGrammar("textfmt")
	f.word = b.Terminal("WORD", pag.Syn("text"))
	f.doc = b.Nonterminal("doc", pag.Syn("out").WithCodec(stringCodec{}))
	// Paragraph lists and paragraphs are the split points: each machine
	// formats a run of paragraphs.
	f.plist = b.SplitNonterminal("para_list", 64,
		pag.Syn("out").WithCodec(stringCodec{}),
		pag.Inh("width").WithCodec(intCodec{}))
	f.para = b.SplitNonterminal("para", 48,
		pag.Syn("out").WithCodec(stringCodec{}),
		pag.Inh("width").WithCodec(intCodec{}))
	f.words = b.Nonterminal("word_list", pag.Syn("text"))
	b.Start(f.doc)

	f.pDoc = b.Production(f.doc, []*pag.Symbol{f.plist},
		pag.Copy("out", "1.out"),
		pag.Const("1.width", width),
	)
	f.pCons = b.Production(f.plist, []*pag.Symbol{f.plist, f.para},
		pag.Def("out", func(a []pag.Value) pag.Value {
			return a[0].(string) + "\n\n" + a[1].(string)
		}, "1.out", "2.out"),
		pag.Copy("1.width", "width"),
		pag.Copy("2.width", "width"),
	)
	f.pOne = b.Production(f.plist, []*pag.Symbol{f.para},
		pag.Copy("out", "1.out"),
		pag.Copy("1.width", "width"),
	)
	f.pPara = b.Production(f.para, []*pag.Symbol{f.words},
		pag.Def("out", func(a []pag.Value) pag.Value {
			return fill(strings.Fields(a[0].(string)), a[1].(int))
		}, "1.text", "width"),
	)
	f.pWCons = b.Production(f.words, []*pag.Symbol{f.words, f.word},
		pag.Def("text", func(a []pag.Value) pag.Value {
			return a[0].(string) + " " + a[1].(string)
		}, "1.text", "2.text"),
	)
	f.pWOne = b.Production(f.words, []*pag.Symbol{f.word},
		pag.Copy("text", "1.text"),
	)

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	f.g = g
	f.a, err = pag.Analyze(g)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// parse builds a parse tree from paragraphs separated by blank lines.
func (f *formatter) parse(src string) *tree.Node {
	var list *tree.Node
	for _, paraText := range strings.Split(src, "\n\n") {
		words := strings.Fields(paraText)
		if len(words) == 0 {
			continue
		}
		var wl *tree.Node
		for i, w := range words {
			leaf := pag.NewTerminal(f.word, w, w)
			if i == 0 {
				wl = pag.NewNode(f.pWOne, leaf)
			} else {
				wl = pag.NewNode(f.pWCons, wl, leaf)
			}
		}
		para := pag.NewNode(f.pPara, wl)
		if list == nil {
			list = pag.NewNode(f.pOne, para)
		} else {
			list = pag.NewNode(f.pCons, list, para)
		}
	}
	return pag.NewNode(f.pDoc, list)
}

func (f *formatter) lex(sym *pag.Symbol, token string) ([]pag.Value, error) {
	return []pag.Value{token}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("textfmt: ")

	f, err := newFormatter(52)
	if err != nil {
		log.Fatal(err)
	}

	// A few paragraphs about the paper itself.
	var src strings.Builder
	paras := []string{
		`This paper reports on experiments with parallel compilation of
		programming languages expressed as an attribute grammar evaluation
		problem running on a network multiprocessor of workstations.`,
		`Static evaluators are more efficient on a sequential machine both in
		CPU time and in memory utilization while dynamic evaluators have a
		higher potential for concurrency so the combined evaluator seeks the
		best of both worlds.`,
		`The parser builds the syntax tree divides it into subtrees and sends
		them to the attribute evaluators which proceed with the translation
		by evaluating attributes and communicating values to other machines.`,
		`Strings are implemented as binary trees with the text residing in
		the leaves so that concatenation is a constant time operation and a
		string librarian process assembles the final program from
		descriptors.`,
	}
	for i := 0; i < 4; i++ { // repeat for enough parallel work
		for _, p := range paras {
			src.WriteString(p)
			src.WriteString("\n\n")
		}
	}

	root := f.parse(src.String())
	res, err := pag.CompileSim(pag.Job{G: f.g, A: f.a, Root: root, Lex: f.lex},
		pag.SimOptions{Machines: 4, Mode: pag.Combined})
	if err != nil {
		log.Fatal(err)
	}

	out := res.RootAttrs[0].(string)
	fmt.Printf("formatted %d paragraphs on 4 machines in %v simulated time (%d fragments)\n\n",
		len(paras)*4, res.EvalTime, res.Frags)
	// Print the first paragraphs of the result.
	sections := strings.SplitN(out, "\n\n", 3)
	for i := 0; i < 2 && i < len(sections); i++ {
		fmt.Println(sections[i])
		fmt.Println()
	}
	fmt.Print(res.Trace.Gantt(80))
}
