// Command multicore demonstrates the two parallel runtimes side by
// side on the paper's Pascal workload: the simulated 1987 cluster
// (pag.CompileSim, virtual time on SUN-2-class machines) and the real
// shared-memory runtime (pag.CompileParallel, wall-clock time on this
// machine's cores). Both produce byte-identical generated code.
package main

import (
	"fmt"
	"os"
	"runtime"

	"pag"
	"pag/internal/pascal"
	"pag/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multicore:", err)
		os.Exit(1)
	}
}

func run() error {
	lang := pascal.MustNew()
	src := workload.Generate(workload.CourseCompiler())
	job, err := lang.ClusterJob(src)
	if err != nil {
		return err
	}
	fmt.Printf("source: %d bytes of generated Pascal, %d tree nodes\n\n",
		len(src), job.Root.Count())

	const machines = 4
	sim, err := pag.CompileSim(job, pag.SimOptions{
		Machines: machines, Mode: pag.Combined, Librarian: true, UIDPreset: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated cluster  (%d machines, 1987):  %8.2fs virtual, %d fragments\n",
		machines, sim.EvalTime.Seconds(), sim.Frags)

	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		real, err := pag.CompileParallel(job, pag.Options{
			Workers: workers, Fragments: machines, Librarian: true, UIDPreset: true,
		})
		if err != nil {
			return err
		}
		// Same decomposition, different worker counts: the output never
		// changes, only the wall clock does.
		match := "programs match"
		if real.Program != sim.Program {
			match = "PROGRAMS DIFFER"
		}
		fmt.Printf("real runtime       (%d workers, today): %8.2fms wall,   %d fragments — %s\n",
			real.Workers, float64(real.WallTime.Microseconds())/1000, real.Frags, match)
	}
	return nil
}
