// Pascalc reproduces the paper's headline experiment interactively: it
// compiles the ~2000-line course-compiler workload with both evaluator
// strategies at every machine count and prints the Figure 5 table plus
// the Figure 6 behaviour chart of the best configuration.
//
//	go run ./examples/pascalc
package main

import (
	"fmt"
	"log"

	"pag"
	"pag/internal/experiments"
	"pag/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pascalc: ")

	src := experiments.Source()
	fmt.Printf("workload: generated course compiler, %d lines of Pascal\n\n", workload.Lines(src))

	lang := experiments.Lang()
	job, err := lang.ClusterJob(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("machines   dynamic    combined    (simulated 1987 running time)")
	var best *pag.SimResult
	bestMachines := 0
	for m := 1; m <= 6; m++ {
		times := map[pag.Mode]*pag.SimResult{}
		for _, mode := range []pag.Mode{pag.Dynamic, pag.Combined} {
			opts := experiments.DefaultOptions()
			opts.Machines = m
			opts.Mode = mode
			res, err := pag.CompileSim(job, opts)
			if err != nil {
				log.Fatal(err)
			}
			times[mode] = res
		}
		fmt.Printf("   %d      %7.2fs   %7.2fs\n", m,
			times[pag.Dynamic].EvalTime.Seconds(),
			times[pag.Combined].EvalTime.Seconds())
		if best == nil || times[pag.Combined].EvalTime < best.EvalTime {
			best = times[pag.Combined]
			bestMachines = m
		}
	}

	fmt.Printf("\nbest: combined evaluator on %d machines (%v)\n", bestMachines, best.EvalTime)
	fmt.Printf("decomposition:\n%s\n", best.Decomp.Describe())
	fmt.Println("behaviour (paper Figure 6):")
	fmt.Print(best.Trace.Gantt(100))
	fmt.Printf("\ngenerated %d bytes of VAX assembly; first lines:\n", len(best.Program))
	for i, line := 0, 0; i < len(best.Program) && line < 8; i++ {
		fmt.Print(string(best.Program[i]))
		if best.Program[i] == '\n' {
			line++
		}
	}
}
