// Calclang explores the trade-off the paper centres on — dynamic
// versus combined evaluation — on the appendix expression language.
// It evaluates a large generated expression distributed over 1..5
// machines with both strategies and shows how the dynamic evaluator's
// dependency-analysis overhead dominates while the combined evaluator
// keeps almost everything static.
//
//	go run ./examples/calclang
package main

import (
	"fmt"
	"log"

	"pag"
	"pag/internal/exprlang"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calclang: ")

	lang := exprlang.MustNew()
	analysis, err := pag.Analyze(lang.G)
	if err != nil {
		log.Fatal(err)
	}

	src := exprlang.Generate(10, 60) // ten sibling blocks, 60 terms each
	root, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expression with %d parse-tree nodes, %d attribute instances\n\n",
		root.Count(), root.CountAttrs())

	job := pag.Job{G: lang.G, A: analysis, Root: root, Lex: lang.TerminalAttrs}

	fmt.Println("machines   dynamic    combined   dyn-graph-edges  comb-dynamic-attrs")
	for m := 1; m <= 5; m++ {
		row := map[pag.Mode]*pag.SimResult{}
		for _, mode := range []pag.Mode{pag.Dynamic, pag.Combined} {
			res, err := pag.CompileSim(job, pag.SimOptions{Machines: m, Mode: mode})
			if err != nil {
				log.Fatal(err)
			}
			row[mode] = res
		}
		fmt.Printf("   %d     %8.1fms  %8.1fms   %9d        %6d (%.1f%%)\n", m,
			float64(row[pag.Dynamic].EvalTime.Microseconds())/1000,
			float64(row[pag.Combined].EvalTime.Microseconds())/1000,
			row[pag.Dynamic].Stats.GraphEdges,
			row[pag.Combined].Stats.DynamicEvals,
			row[pag.Combined].Stats.DynamicFraction()*100)
	}

	// Verify both strategies agree on the value.
	a, err := pag.CompileSim(job, pag.SimOptions{Machines: 4, Mode: pag.Dynamic})
	if err != nil {
		log.Fatal(err)
	}
	b, err := pag.CompileSim(job, pag.SimOptions{Machines: 4, Mode: pag.Combined})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalue (dynamic)  = %v\n", a.RootAttrs[exprlang.AttrValue])
	fmt.Printf("value (combined) = %v\n", b.RootAttrs[exprlang.AttrValue])
	if a.RootAttrs[exprlang.AttrValue] != b.RootAttrs[exprlang.AttrValue] {
		log.Fatal("evaluators disagree")
	}
}
