package pag_test

import (
	"fmt"
	"log"

	"pag"
	"pag/internal/exprlang"
)

// Example evaluates the paper's appendix expression with the combined
// evaluator on three simulated machines and prints the result.
func Example() {
	lang := exprlang.MustNew()
	analysis, err := pag.Analyze(lang.G)
	if err != nil {
		log.Fatal(err)
	}
	// A splittable expression: three let-blocks summed together.
	root, err := lang.Parse(exprlang.Generate(3, 8))
	if err != nil {
		log.Fatal(err)
	}
	res, err := pag.CompileSim(
		pag.Job{G: lang.G, A: analysis, Root: root, Lex: lang.TerminalAttrs},
		pag.SimOptions{Machines: 3, Mode: pag.Combined},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("value:", res.RootAttrs[exprlang.AttrValue])
	fmt.Println("fragments:", res.Frags)
	// Output:
	// value: 216
	// fragments: 3
}

// ExampleAnalyze shows the OAG prepass on the appendix grammar: every
// nonterminal needs a single visit, with the symbol table flowing in
// and the value flowing out.
func ExampleAnalyze() {
	lang := exprlang.MustNew()
	analysis, err := pag.Analyze(lang.G)
	if err != nil {
		log.Fatal(err)
	}
	expr := lang.G.SymbolNamed("expr")
	fmt.Println("visits:", analysis.NumVisits(expr))
	ph := analysis.Phases(expr)[0]
	fmt.Println("inherited first:", expr.Attrs[ph.Inh[0]].Name)
	fmt.Println("synthesized after:", expr.Attrs[ph.Syn[0]].Name)
	// Output:
	// visits: 1
	// inherited first: stab
	// synthesized after: value
}
