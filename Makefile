# Development targets; CI (.github/workflows/ci.yml) runs the same
# commands, so a green `make check` locally means a green CI run.

GO ?= go

.PHONY: all build test race bench bench-parallel lint fmt check figures clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checked tests: required before touching internal/parallel.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run 'XXX' -bench . -benchtime 1x ./...

# Real-multicore speedup benchmark only (paper workload, 1/2/4/8 workers).
bench-parallel:
	$(GO) test -run 'XXX' -bench BenchmarkParallelPascal ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

# Everything CI checks, in CI's order.
check: build lint race

# Regenerate every figure and table of the paper (plus Figure 8, the
# real-multicore measurement).
figures:
	$(GO) run ./cmd/benchfig

clean:
	$(GO) clean ./...
