# Development targets; CI (.github/workflows/ci.yml) runs the same
# commands, so a green `make check` locally means a green CI run.

GO ?= go

# Benchmarks tracked in the BENCH_*.json perf trajectory.
BENCH_TRACKED = BenchmarkParallelPascal|BenchmarkHotPath|BenchmarkPoolReuse|BenchmarkFragmentCache|BenchmarkIncremental|BenchmarkSustainedLoad|BenchmarkFleet|BenchmarkAdaptive|BenchmarkWarmRestart
BENCH_BASELINE = BENCH_PR10.json

.PHONY: all build test race bench bench-parallel bench-json benchstat bench-gate fuzz lint fmt check figures clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checked tests: required before touching internal/parallel.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run 'XXX' -bench . -benchtime 1x ./...

# Real-multicore speedup benchmark only (paper workload, 1/2/4/8 workers).
bench-parallel:
	$(GO) test -run 'XXX' -bench BenchmarkParallelPascal ./...

# Regenerate the committed benchmark baseline for this PR.
bench-json:
	$(GO) run ./cmd/benchjson -bench '$(BENCH_TRACKED)' -benchtime 2s -o $(BENCH_BASELINE)

# Before/after comparison against the committed baseline: measures the
# tracked suite into a scratch file and diffs it. Uses the offline
# benchstat substitute built into cmd/benchjson, so it needs no
# external tools; if you have golang.org/x/perf benchstat installed,
# raw `go test -bench` output still works with it as usual.
benchstat:
	$(GO) run ./cmd/benchjson -bench '$(BENCH_TRACKED)' -benchtime 2s -o /tmp/bench-new.json
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) /tmp/bench-new.json

# The CI regression gate, runnable locally: fails on a >25%% ns/op
# regression against the committed baseline or any allocs/op gained on
# a zero-alloc benchmark.
bench-gate:
	$(GO) run ./cmd/benchjson -bench '$(BENCH_TRACKED)' -benchtime 2s -o /tmp/bench-new.json
	$(GO) run ./cmd/benchjson -compare -fail-over 25 $(BENCH_BASELINE) /tmp/bench-new.json

# Short-budget native fuzzing of the incremental-cache and planning
# invariants.
fuzz:
	$(GO) test ./internal/tree -run XXX -fuzz FuzzHash -fuzztime 30s
	$(GO) test ./internal/parallel -run XXX -fuzz FuzzInboundCanon -fuzztime 15s
	$(GO) test ./internal/parallel -run XXX -fuzz FuzzPlan -fuzztime 15s
	$(GO) test ./internal/rope -run XXX -fuzz FuzzShipCodec -fuzztime 15s

# vet + gofmt + the repo's own analyzer suite (cmd/paglint:
# determinism, lockdiscipline, sealedio). staticcheck and govulncheck
# run when installed (CI installs them; the targets stay usable on a
# machine without network access).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/paglint ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

fmt:
	gofmt -w .

# Everything CI checks, in CI's order.
check: build lint race

# Regenerate every figure and table of the paper (plus Figure 8, the
# real-multicore measurement).
figures:
	$(GO) run ./cmd/benchfig

clean:
	$(GO) clean ./...
