package pag_test

// Shape assertions for every experiment in DESIGN.md's index: the
// simulated reproduction is not expected to match the paper's absolute
// numbers (our substrate is a simulator, not six SUN-2s), but who wins,
// by roughly what factor, and where the crossovers fall must agree.

import (
	"strings"
	"sync"
	"testing"

	"pag/internal/cluster"
	"pag/internal/experiments"
)

var (
	fig5Once sync.Once
	fig5Data *experiments.Fig5Result
	fig5Err  error
)

func fig5(t *testing.T) *experiments.Fig5Result {
	t.Helper()
	fig5Once.Do(func() { fig5Data, fig5Err = experiments.Fig5() })
	if fig5Err != nil {
		t.Fatalf("Fig5: %v", fig5Err)
	}
	return fig5Data
}

func TestF5CombinedBeatsDynamicEverywhere(t *testing.T) {
	r := fig5(t)
	for i := 0; i < experiments.MaxMachines; i++ {
		if r.Combined[i].EvalTime >= r.Dynamic[i].EvalTime {
			t.Errorf("machines=%d: combined %v >= dynamic %v (paper: combined consistently better)",
				i+1, r.Combined[i].EvalTime, r.Dynamic[i].EvalTime)
		}
	}
}

func TestT1SpeedupBands(t *testing.T) {
	r := fig5(t)
	// Paper §4.1: "approximately 4 times faster than the sequential
	// version" on 5 machines for the combined evaluator.
	if s := r.Speedup(cluster.Combined, 5); s < 3.0 || s > 5.5 {
		t.Errorf("combined speedup at 5 machines = %.2f, want ~4 (band 3.0–5.5)", s)
	}
	// The parallel dynamic evaluator also speeds up substantially.
	if s := r.Speedup(cluster.Dynamic, 5); s < 2.0 {
		t.Errorf("dynamic speedup at 5 machines = %.2f, want >= 2", s)
	}
	// Sequentially, the static/combined evaluator clearly beats the
	// dynamic one (the CPU cost of dependency analysis).
	ratio := float64(r.Dynamic[0].EvalTime) / float64(r.Combined[0].EvalTime)
	if ratio < 1.3 {
		t.Errorf("sequential dynamic/static ratio = %.2f, want > 1.3", ratio)
	}
}

func TestT6BestAtFiveMachines(t *testing.T) {
	r := fig5(t)
	// Paper §4.1: running time does not decrease monotonically; the
	// best performance is obtained with five machines, six is worse
	// because the decomposition is less even.
	for m := 2; m <= 5; m++ {
		if r.Combined[m-1].EvalTime >= r.Combined[m-2].EvalTime {
			t.Errorf("combined: %d machines (%v) not faster than %d (%v)",
				m, r.Combined[m-1].EvalTime, m-1, r.Combined[m-2].EvalTime)
		}
	}
	if r.Combined[5].EvalTime <= r.Combined[4].EvalTime {
		t.Errorf("combined: 6 machines (%v) should be slower than 5 (%v): uneven decomposition",
			r.Combined[5].EvalTime, r.Combined[4].EvalTime)
	}
}

func TestT2DynamicFractionSmall(t *testing.T) {
	r := fig5(t)
	// Paper §4.1: "on average less than N percent of the attributes are
	// evaluated dynamically" — the vast majority is static.
	for i := 1; i < experiments.MaxMachines; i++ {
		if f := r.Combined[i].DynFrac; f >= 0.10 {
			t.Errorf("machines=%d: dynamic fraction %.3f, want < 0.10", i+1, f)
		}
	}
	// The purely dynamic evaluator evaluates everything dynamically.
	if f := r.Dynamic[3].DynFrac; f != 1.0 {
		t.Errorf("dynamic evaluator fraction = %.3f, want 1.0", f)
	}
}

func TestF6PhaseStructure(t *testing.T) {
	tr, res, err := experiments.Fig6()
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	start := tr.LastMarkTime("ready") // all evaluators have their subtree
	envDone := tr.LastMarkTime("got env")
	done := tr.MarkTime("results complete")
	if start < 0 || envDone < 0 || done < 0 {
		t.Fatalf("missing phase marks (start=%v envDone=%v done=%v)", start, envDone, done)
	}
	evals := []string{"eval-a", "eval-b", "eval-c", "eval-d", "eval-e"}
	// Symbol-table propagation is sequential: the global table reaches
	// the fragments one network hop at a time, in process-tree order.
	var envTimes []int64
	for _, m := range tr.Marks {
		if m.Label == "got env" {
			envTimes = append(envTimes, int64(m.At))
		}
	}
	if len(envTimes) < 4 {
		t.Fatalf("only %d 'got env' marks; want one per non-root fragment", len(envTimes))
	}
	for i := 1; i < len(envTimes); i++ {
		if envTimes[i] <= envTimes[i-1] {
			t.Errorf("env propagation not sequential: hop %d at %d <= hop %d at %d",
				i, envTimes[i], i-1, envTimes[i-1])
		}
	}
	// Concurrency during the symbol-table phase is much lower than
	// during code generation (paper Figure 6: thin lines early, thick
	// parallel lines during code generation).
	symtabConc := tr.Concurrency(evals, start, envDone)
	codegenConc := tr.Concurrency(evals, envDone, done)
	if codegenConc < 2.5 {
		t.Errorf("code generation concurrency = %.2f, want >= 2.5 (paper: good concurrency)", codegenConc)
	}
	if symtabConc > 0.8*codegenConc {
		t.Errorf("symbol-table concurrency %.2f not clearly below code generation %.2f",
			symtabConc, codegenConc)
	}
	if res.Frags != 5 {
		t.Errorf("fragments = %d, want 5", res.Frags)
	}
	// The chart must render with one line per machine plus the
	// librarian.
	g := tr.Gantt(90)
	for _, proc := range append(evals, "librarian", "parser") {
		if !strings.Contains(g, proc) {
			t.Errorf("Gantt missing process %s", proc)
		}
	}
}

func TestF7Decomposition(t *testing.T) {
	d, err := experiments.Fig7()
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if d.NumFragments() != 5 {
		t.Fatalf("fragments = %d, want 5 (paper Figure 7: a..e)", d.NumFragments())
	}
	// Paper §4.1: the five-machine decomposition yields subtrees of
	// about equal size.
	if b := d.Balance(); b > 1.35 {
		t.Errorf("decomposition balance max/mean = %.2f, want <= 1.35 (about equal size)", b)
	}
	desc := d.Describe()
	for _, label := range []string{"a:", "b:", "c:", "d:", "e:"} {
		if !strings.Contains(desc, label) {
			t.Errorf("decomposition description missing fragment %q:\n%s", label, desc)
		}
	}
}

func TestT4LibrarianSavings(t *testing.T) {
	a, err := experiments.T4Librarian()
	if err != nil {
		t.Fatalf("T4: %v", err)
	}
	// Paper §4.3: the librarian improves running time by roughly 10%;
	// accept 3%–40% on the simulator.
	imp := a.Improvement()
	if imp < 1.03 {
		t.Errorf("librarian improvement = %.3f, want >= 1.03 (paper: ~10%%)", imp)
	}
	if imp > 1.6 {
		t.Errorf("librarian improvement = %.3f suspiciously large (paper: ~10%%)", imp)
	}
}

func TestT5PipelineCap(t *testing.T) {
	r, err := experiments.T5Pipeline()
	if err != nil {
		t.Fatalf("T5: %v", err)
	}
	// Paper §5: pipelining the compiler phases yields speedups limited
	// to about 2 despite using four machines.
	if r.Speedup < 1.2 {
		t.Errorf("pipeline speedup = %.2f, want >= 1.2", r.Speedup)
	}
	if r.Speedup > 3.0 {
		t.Errorf("pipeline speedup = %.2f, want <= 3.0 (paper: limited to ~2)", r.Speedup)
	}
}

func TestT7PriorityAblation(t *testing.T) {
	a, err := experiments.T7Priority()
	if err != nil {
		t.Fatalf("T7: %v", err)
	}
	// Without priority attributes the dynamic evaluator's ready queue
	// buries the global symbol table behind local work (paper §4.3's
	// "pathological situations"): disabling them must cost time.
	if imp := a.Improvement(); imp < 1.02 {
		t.Errorf("priority-attribute improvement = %.3f, want >= 1.02", imp)
	}
}

func TestT8UniqueIDAblation(t *testing.T) {
	a, err := experiments.T8UniqueIDs()
	if err != nil {
		t.Fatalf("T8: %v", err)
	}
	// Paper §4.3: with a propagated counter "virtually all evaluators
	// wait"; per-evaluator bases must be substantially faster.
	if imp := a.Improvement(); imp < 1.3 {
		t.Errorf("unique-id preset improvement = %.2f, want >= 1.3 (chain serializes codegen)", imp)
	}
}

func TestT9ParseShare(t *testing.T) {
	r, err := experiments.T9ParseShare()
	if err != nil {
		t.Fatalf("T9: %v", err)
	}
	// Paper §1/§4.1: most time is in the semantic phase, not parsing;
	// but parsing is not free (their parser took a noticeable fraction).
	if r.Share <= 0.05 || r.Share >= 0.5 {
		t.Errorf("parse share = %.2f, want in (0.05, 0.5)", r.Share)
	}
}

func TestT10AssemblyVsMachineCode(t *testing.T) {
	r, err := experiments.T10AssemblySize()
	if err != nil {
		t.Fatalf("T10: %v", err)
	}
	// Paper §4.1: "machine language is much more compact than assembly
	// language".
	if r.Ratio < 2.0 {
		t.Errorf("assembly/machine ratio = %.2f, want >= 2 (assembly text much larger)", r.Ratio)
	}
	if r.MachineBytes <= 0 {
		t.Error("machine code size not computed")
	}
}

func TestT11ParallelMake(t *testing.T) {
	r, err := experiments.T11ParallelMake()
	if err != nil {
		t.Fatalf("T11: %v", err)
	}
	// Parallel make helps but is capped by the largest compilation and
	// the sequential link.
	if r.Speedup < 1.5 {
		t.Errorf("parallel make speedup = %.2f, want >= 1.5", r.Speedup)
	}
	if r.Speedup > 5.0 {
		t.Errorf("parallel make speedup = %.2f, want <= 5 (size skew + sequential link)", r.Speedup)
	}
}

func TestT3SequentialStaticBeatsDynamic(t *testing.T) {
	r := fig5(t)
	d, c := r.Dynamic[0], r.Combined[0]
	if d.EvalTime <= c.EvalTime {
		t.Errorf("sequential dynamic (%v) should be slower than static/combined (%v)", d.EvalTime, c.EvalTime)
	}
	// Dynamic evaluation also uses far more memory (the dependency
	// graph); we assert via graph size counters.
	if d.DynFrac != 1.0 {
		t.Errorf("sequential dynamic fraction = %.2f, want 1.0", d.DynFrac)
	}
}

func TestE1ExpensiveAttributesHypothesis(t *testing.T) {
	// Paper §6: grammars whose attribute evaluation is expensive
	// relative to communication "should derive most benefit from
	// parallel evaluation" — speedup must grow monotonically with the
	// evaluation/communication cost ratio.
	pts, err := experiments.E1ExpensiveAttributes()
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Errorf("speedup not increasing with attribute cost: %.2f at %.2fx vs %.2f at %.2fx",
				pts[i].Speedup, pts[i].Factor, pts[i-1].Speedup, pts[i-1].Factor)
		}
	}
	last := pts[len(pts)-1]
	if last.Speedup < 4.3 {
		t.Errorf("at %.0fx attribute cost, speedup = %.2f; want approaching 5 machines", last.Factor, last.Speedup)
	}
}

func TestE2NetworkLatencyHypothesis(t *testing.T) {
	// The flip side: expensive communication kills parallelism (the
	// regime the paper assigns to Kaplan/Kaiser's design in §5).
	pts, err := experiments.E2NetworkLatency()
	if err != nil {
		t.Fatalf("E2: %v", err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup > pts[i-1].Speedup+0.01 {
			t.Errorf("speedup grew with latency: %.2f at %.1fx vs %.2f at %.1fx",
				pts[i].Speedup, pts[i].Factor, pts[i-1].Speedup, pts[i-1].Factor)
		}
	}
	if worst := pts[len(pts)-1]; worst.Speedup > 3.0 {
		t.Errorf("at %.0fx latency, speedup still %.2f; expected substantial degradation", worst.Factor, worst.Speedup)
	}
}

func TestE3GranularitySweep(t *testing.T) {
	pts, err := experiments.E3GranularitySweep()
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	// Coarse granularity yields few fragments; finer granularity more,
	// capped by the machine count.
	if pts[0].Machines >= pts[len(pts)-1].Machines {
		t.Errorf("fragment count did not grow with finer granularity: %d .. %d",
			pts[0].Machines, pts[len(pts)-1].Machines)
	}
}
