package pag_test

// One benchmark per paper table/figure (DESIGN.md experiment index).
// Benchmarks report two kinds of numbers: Go wall-clock per run (the
// cost of running the reproduction) and, where meaningful, the
// simulated 1987 running time via the sim_ms metric — the number the
// paper actually plots.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pag/internal/ag"
	"pag/internal/arena"
	"pag/internal/cluster"
	"pag/internal/eval"
	"pag/internal/experiments"
	"pag/internal/exprlang"
	"pag/internal/fleet"
	"pag/internal/parallel"
	"pag/internal/pascal"
	"pag/internal/rope"
	"pag/internal/symtab"
	"pag/internal/tree"
	"pag/internal/vax"
	"pag/internal/workload"
)

func benchPoint(b *testing.B, mode cluster.Mode, machines int, opts cluster.Options) {
	b.Helper()
	var last experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		pt, err := experiments.RunPoint(mode, machines, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = pt
	}
	b.ReportMetric(float64(last.EvalTime.Milliseconds()), "sim_ms")
	b.ReportMetric(float64(last.Frags), "frags")
}

// BenchmarkFig5 regenerates every point of the running-times figure.
func BenchmarkFig5(b *testing.B) {
	for _, mode := range []cluster.Mode{cluster.Combined, cluster.Dynamic} {
		for m := 1; m <= experiments.MaxMachines; m++ {
			b.Run(fmt.Sprintf("%s/machines=%d", mode, m), func(b *testing.B) {
				benchPoint(b, mode, m, experiments.DefaultOptions())
			})
		}
	}
}

// BenchmarkParallelPascal measures the REAL shared-memory parallel
// runtime on the paper's Pascal workload at 1/2/4/8 workers. Unlike
// BenchmarkFig5 these are wall-clock numbers on this machine: ns/op is
// the actual compile time, and on a multicore machine the 4-worker run
// should beat the 1-worker run by well over 1.5x (on a single-CPU
// machine the curve is flat — see Figure 8's caption). frags reports
// the decomposition width.
func BenchmarkParallelPascal(b *testing.B) {
	job, err := experiments.Job()
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := experiments.DefaultParallelOptions()
			opts.Workers = w
			var last *parallel.Result
			for i := 0; i < b.N; i++ {
				res, err := parallel.Run(job, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Frags), "frags")
			b.SetBytes(int64(len(last.Program)))
		})
	}
}

// BenchmarkAdaptive measures what the grammar-plan cost planner buys
// over the legacy size planner: the same job decomposed by both at
// 2/4/8 workers, on the paper's Pascal workload and the appendix
// grammar. ns/op is the full compile; msgs/op is the cross-fragment
// attribute message count the planners compete on (the paper's §2.5
// network-traffic economy) and frags the resulting width. Tracked by
// the benchstat regression gate.
func BenchmarkAdaptive(b *testing.B) {
	pascalJob, err := experiments.Job()
	if err != nil {
		b.Fatal(err)
	}
	el := exprlang.MustNew()
	ea, err := ag.Analyze(el.G)
	if err != nil {
		b.Fatal(err)
	}
	eroot, err := el.Parse(exprlang.Generate(10, 8))
	if err != nil {
		b.Fatal(err)
	}
	exprJob := cluster.Job{G: el.G, A: ea, Root: eroot, Lex: el.TerminalAttrs}

	jobs := []struct {
		name string
		job  cluster.Job
		opts parallel.Options
	}{
		{"pascal", pascalJob, experiments.DefaultParallelOptions()},
		{"exprlang", exprJob, parallel.Options{}},
	}
	for _, j := range jobs {
		for _, planner := range []tree.Planner{tree.PlanSize, tree.PlanCost} {
			for _, w := range []int{2, 4, 8} {
				b.Run(fmt.Sprintf("%s/plan=%v/workers=%d", j.name, planner, w), func(b *testing.B) {
					opts := j.opts
					opts.Workers = w
					opts.Planner = planner
					opts.NoCache = true
					var last *parallel.Result
					for i := 0; i < b.N; i++ {
						res, err := parallel.Run(j.job, opts)
						if err != nil {
							b.Fatal(err)
						}
						last = res
					}
					b.ReportMetric(float64(last.Messages), "msgs/op")
					b.ReportMetric(float64(last.Frags), "frags")
				})
			}
		}
	}
}

// BenchmarkPoolReuse measures what the persistent compile service
// buys: the same job compiled through one long-lived Pool (workers,
// deques and librarians reused across jobs, analysis shared) versus a
// fresh one-shot runtime per compilation (parallel.Run), which is what
// a naive service would do. The pool case is the steady state of
// cmd/pagd; the gap between the two is the per-job setup/teardown
// overhead the Pool amortizes.
func BenchmarkPoolReuse(b *testing.B) {
	pascalJob, err := pascal.MustNew().ClusterJob(workload.Generate(workload.Tiny()))
	if err != nil {
		b.Fatal(err)
	}
	el := exprlang.MustNew()
	ea, err := ag.Analyze(el.G)
	if err != nil {
		b.Fatal(err)
	}
	eroot, err := el.Parse("1+2*(3+4)+5*6")
	if err != nil {
		b.Fatal(err)
	}
	microJob := cluster.Job{G: el.G, A: ea, Root: eroot, Lex: el.TerminalAttrs}

	cases := []struct {
		name string
		job  cluster.Job
		opts parallel.Options
	}{
		// micro: a near-empty job, so ns/op is almost purely the
		// per-job runtime setup/teardown the pool amortizes. NoCache
		// keeps this a measurement of pool reuse, not of the fragment
		// cache (BenchmarkFragmentCache measures that).
		{"micro", microJob, parallel.Options{Workers: 4, NoCache: true}},
		// tiny-pascal: a small but real compilation (librarian, UID
		// presets), the shape a compile service actually serves.
		{"tiny-pascal", pascalJob, func() parallel.Options {
			o := experiments.DefaultParallelOptions()
			o.Workers = 4
			o.NoCache = true
			return o
		}()},
	}
	for _, c := range cases {
		b.Run(c.name+"/pool", func(b *testing.B) {
			pool := parallel.NewPool(parallel.PoolOptions{Workers: 4})
			defer pool.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.Compile(ctx, c.job, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/oneshot", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Run(c.job, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFragmentCache measures what the content-addressed fragment
// cache buys a pool serving repeated traffic: the same tiny-pascal job
// compiled through one pool cold (cache bypassed — every compile
// evaluates every attribute) versus warm (every compile after the
// first replays the recorded fragments). Warm runs still clone, hash
// and decompose the tree, re-deposit librarian runs and splice the
// program — the gap is pure attribute evaluation, and the warm side
// must stay >= 2x faster for the cache to earn its complexity. The
// hits metric reports cache hits per op (warm steady state: 1).
func BenchmarkFragmentCache(b *testing.B) {
	job, err := pascal.MustNew().ClusterJob(workload.Generate(workload.Tiny()))
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultParallelOptions()
	opts.Workers = 4
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		pool := parallel.NewPool(parallel.PoolOptions{Workers: 4})
		defer pool.Close()
		o := opts
		o.NoCache = true
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Compile(ctx, job, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		pool := parallel.NewPool(parallel.PoolOptions{Workers: 4})
		defer pool.Close()
		if _, err := pool.Compile(ctx, job, opts); err != nil {
			b.Fatal(err) // prime the cache
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Compile(ctx, job, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := pool.Stats()
		if st.CacheHits < int64(b.N) {
			b.Fatalf("warm loop missed the cache: %+v", st)
		}
		b.ReportMetric(float64(st.CacheHits)/float64(b.N), "hits/op")
	})
}

// BenchmarkIncremental measures what incremental recompilation buys an
// edit-compile loop: the same single-token edit of the tiny Pascal
// program compiled through one pool cold (cache bypassed — every
// fragment evaluates) versus warm-incremental (the unedited base
// program was compiled once; the edited tree misses the whole-tree key
// and every fragment the edit does not touch replays from its
// per-fragment recording, with only the edited fragment evaluating
// live). The edit changes one operand token inside the root fragment
// and no declarations, so the global symbol table every other fragment
// receives is unchanged and they all commit. Warm-incremental must
// stay >= 2x faster than cold — the paper's economy that an edited
// program only pays for the fragments its change actually touches.
// The partial/op metric reports fragments replayed per compile.
func BenchmarkIncremental(b *testing.B) {
	lang := pascal.MustNew()
	base := workload.Generate(workload.Tiny())
	// Swap one character inside the final writeln's string constant:
	// same token length (the cuts stay put), different assembly, no
	// declaration touched — and the last statement of the program stays
	// in the root fragment's retained tail across decomposition widths.
	const oldTok, newTok = "'total '", "'tutal '"
	edited := strings.Replace(base, oldTok, newTok, 1)
	if edited == base {
		b.Fatalf("edit target %q not found in the tiny workload", oldTok)
	}
	baseJob, err := lang.ClusterJob(base)
	if err != nil {
		b.Fatal(err)
	}
	editedJob, err := lang.ClusterJob(edited)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultParallelOptions()
	opts.Workers = 4
	opts.Fragments = 6
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		pool := parallel.NewPool(parallel.PoolOptions{Workers: 4})
		defer pool.Close()
		o := opts
		o.NoCache = true
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Compile(ctx, editedJob, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-incremental", func(b *testing.B) {
		pool := parallel.NewPool(parallel.PoolOptions{Workers: 4})
		defer pool.Close()
		if _, err := pool.Compile(ctx, baseJob, opts); err != nil {
			b.Fatal(err) // record the base program
		}
		b.ReportAllocs()
		b.ResetTimer()
		var partial int
		for i := 0; i < b.N; i++ {
			res, err := pool.Compile(ctx, editedJob, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.PartialHits < 1 {
				b.Fatalf("edited compile replayed no fragments (demoted %d)", res.Demoted)
			}
			partial += res.PartialHits
		}
		b.StopTimer()
		b.ReportMetric(float64(partial)/float64(b.N), "partial/op")
	})
}

// BenchmarkWarmRestart measures what the persistent cache buys a
// process restart: one "process" (open store + pool, compile, close)
// per op, either over a fresh directory every time (cold-start —
// nothing to replay, the spill is pure overhead) or over one primed
// directory (warm-restart — every op replays the recording a previous
// process left on disk). The gap is the restart economy `pagd
// -cache-dir` exists for; diskhits/op confirms the warm loop really
// served from disk. Tracked by the benchstat regression gate.
func BenchmarkWarmRestart(b *testing.B) {
	job, err := pascal.MustNew().ClusterJob(workload.Generate(workload.Tiny()))
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultParallelOptions()
	opts.Workers = 4
	ctx := context.Background()

	process := func(b *testing.B, dir string) int64 {
		store, err := parallel.OpenDiskCache(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		pool := parallel.NewPool(parallel.PoolOptions{Workers: 4, DiskCache: store})
		if _, err := pool.Compile(ctx, job, opts); err != nil {
			b.Fatal(err)
		}
		hits := pool.Stats().DiskHits
		pool.Close()
		return hits
	}

	b.Run("cold-start", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			process(b, b.TempDir())
		}
	})
	b.Run("warm-restart", func(b *testing.B) {
		dir := b.TempDir()
		process(b, dir) // prime: the "previous process" records to disk
		b.ReportAllocs()
		b.ResetTimer()
		var hits int64
		for i := 0; i < b.N; i++ {
			hits += process(b, dir)
		}
		b.StopTimer()
		if hits < int64(b.N) {
			b.Fatalf("warm-restart loop missed disk: %d hit(s) over %d op(s)", hits, b.N)
		}
		b.ReportMetric(float64(hits)/float64(b.N), "diskhits/op")
	})
}

// BenchmarkSustainedLoad drives one pool the way a busy pagd sees it:
// 32 submitter goroutines pushing a mixed stream of jobs — half warm
// cache hits, a quarter incremental edits, a quarter forced-cold
// compiles — across rotating client identities and both priority
// classes, through a MaxInFlight bound tighter than the offered
// concurrency so the admission queue is genuinely exercised. ns/op is
// sustained per-job service time (throughput's reciprocal); p50_ms and
// p99_ms report the client-observed latency distribution, the number
// an operator actually watches. Tracked by the benchstat regression
// gate.
func BenchmarkSustainedLoad(b *testing.B) {
	lang := pascal.MustNew()
	base := workload.Generate(workload.Tiny())
	const oldTok, newTok = "'total '", "'tutal '"
	edited := strings.Replace(base, oldTok, newTok, 1)
	if edited == base {
		b.Fatalf("edit target %q not found in the tiny workload", oldTok)
	}
	baseJob, err := lang.ClusterJob(base)
	if err != nil {
		b.Fatal(err)
	}
	editedJob, err := lang.ClusterJob(edited)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultParallelOptions()
	opts.Workers = 4
	opts.Fragments = 6

	pool := parallel.NewPool(parallel.PoolOptions{Workers: 4, MaxInFlight: 8, QueueDepth: 64})
	defer pool.Close()
	ctx := context.Background()
	if _, err := pool.Compile(ctx, baseJob, opts); err != nil {
		b.Fatal(err) // prime the cache so the warm mix is actually warm
	}

	const submitters = 32
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, b.N)
	jobs := make(chan int)
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, b.N/submitters+1)
			for i := range jobs {
				o := opts
				o.Client = fmt.Sprintf("client-%d", i%5)
				if i%3 == 0 {
					o.Priority = parallel.PriorityLow
				}
				job := baseJob
				switch i % 4 {
				case 2:
					job = editedJob // incremental replay
				case 3:
					o.NoCache = true // forced cold compile
				}
				start := time.Now()
				if _, err := pool.Compile(ctx, job, o); err != nil {
					b.Error(err)
					return
				}
				local = append(local, time.Since(start))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	for i := 0; i < b.N; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	b.StopTimer()
	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	b.ReportMetric(q(0.50), "p50_ms")
	b.ReportMetric(q(0.99), "p99_ms")
}

// BenchmarkT3Sequential compares the sequential evaluators (CPU time
// and allocation of the reproduction itself, plus simulated time).
func BenchmarkT3Sequential(b *testing.B) {
	b.Run("static", func(b *testing.B) { benchPoint(b, cluster.Combined, 1, experiments.DefaultOptions()) })
	b.Run("dynamic", func(b *testing.B) { benchPoint(b, cluster.Dynamic, 1, experiments.DefaultOptions()) })
}

// BenchmarkT2CombinedStats reports the dynamic-evaluation fraction.
func BenchmarkT2CombinedStats(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		f, err := experiments.T2DynamicFraction(5)
		if err != nil {
			b.Fatal(err)
		}
		frac = f
	}
	b.ReportMetric(frac*100, "dyn_pct")
}

// BenchmarkT4Librarian measures result propagation with and without
// the string librarian.
func BenchmarkT4Librarian(b *testing.B) {
	withLib := experiments.DefaultOptions()
	naive := experiments.DefaultOptions()
	naive.Librarian = false
	b.Run("librarian", func(b *testing.B) { benchPoint(b, cluster.Combined, 5, withLib) })
	b.Run("naive", func(b *testing.B) { benchPoint(b, cluster.Combined, 5, naive) })
}

// BenchmarkT5Pipeline runs the pipelined-compiler baseline.
func BenchmarkT5Pipeline(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.T5Pipeline()
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkT7Priority measures the priority-attribute ablation.
func BenchmarkT7Priority(b *testing.B) {
	on := experiments.DefaultOptions()
	off := experiments.DefaultOptions()
	off.NoPriority = true
	b.Run("priority", func(b *testing.B) { benchPoint(b, cluster.Dynamic, 5, on) })
	b.Run("fifo", func(b *testing.B) { benchPoint(b, cluster.Dynamic, 5, off) })
}

// BenchmarkT8UniqueIDs measures the unique-identifier ablation.
func BenchmarkT8UniqueIDs(b *testing.B) {
	preset := experiments.DefaultOptions()
	chain := experiments.DefaultOptions()
	chain.UIDPreset = false
	b.Run("preset", func(b *testing.B) { benchPoint(b, cluster.Combined, 5, preset) })
	b.Run("chain", func(b *testing.B) { benchPoint(b, cluster.Combined, 5, chain) })
}

// BenchmarkT9Parse measures real parser throughput on the course
// program (the reproduction's own speed, not simulated).
func BenchmarkT9Parse(b *testing.B) {
	l := experiments.Lang()
	src := experiments.Source()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT10Assemble measures the size assembler.
func BenchmarkT10Assemble(b *testing.B) {
	r, err := experiments.T10AssemblySize()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.Ratio, "asm_to_mc_ratio")
	job, err := experiments.Job()
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultOptions()
	opts.Machines = 1
	opts.Mode = cluster.Combined
	res, err := cluster.Run(job, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(res.Program)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vax.MachineSize(res.Program)
	}
}

// BenchmarkT11ParallelMake runs the parallel-make baseline.
func BenchmarkT11ParallelMake(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.T11ParallelMake()
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkT12Rope compares O(1) rope concatenation against flat
// string concatenation for building a code attribute from n snippets.
func BenchmarkT12Rope(b *testing.B) {
	const n = 2000
	snippet := "\tmovl r0, r1\n"
	b.Run("rope", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var r *rope.Rope
			for j := 0; j < n; j++ {
				r = rope.Concat(r, rope.Leaf(snippet))
			}
			if r.Len() != n*len(snippet) {
				b.Fatal("bad length")
			}
		}
	})
	b.Run("string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := ""
			for j := 0; j < n; j++ {
				s += snippet
			}
			if len(s) != n*len(snippet) {
				b.Fatal("bad length")
			}
		}
	})
}

// BenchmarkT12Symtab measures applicative symbol-table updates.
func BenchmarkT12Symtab(b *testing.B) {
	names := make([]string, 256)
	for i := range names {
		names[i] = fmt.Sprintf("ident%03d", i)
	}
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := symtab.New()
			for j, n := range names {
				t = t.Add(n, j)
			}
		}
	})
	b.Run("lookup", func(b *testing.B) {
		t := symtab.New()
		for j, n := range names {
			t = t.Add(n, j)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := t.Lookup(names[i%len(names)]); !ok {
				b.Fatal("missing")
			}
		}
	})
}

// BenchmarkT12Arena compares bump allocation against the Go allocator
// (the paper's "very fast memory allocation ... no provision for
// reusing memory").
func BenchmarkT12Arena(b *testing.B) {
	type node struct {
		a, b, c int64
		p       *node
	}
	b.Run("arena", func(b *testing.B) {
		var ar arena.Arena[node]
		for i := 0; i < b.N; i++ {
			n := ar.New()
			n.a = int64(i)
		}
	})
	b.Run("new", func(b *testing.B) {
		var sink *node
		for i := 0; i < b.N; i++ {
			n := &node{a: int64(i)}
			sink = n
		}
		_ = sink
	})
}

// BenchmarkHotPath isolates the evaluation hot path from rule work:
// pure-arithmetic attribute rules (interned ints, shared empty symbol
// table) over a fixed tree, so ns/op and allocs/op measure the
// evaluator machinery itself. The static-visit steady state must stay
// at 0 allocs/op; the build+run cases bound the per-compilation graph
// construction cost.
func BenchmarkHotPath(b *testing.B) {
	l := exprlang.MustNew()
	a, err := ag.Analyze(l.G)
	if err != nil {
		b.Fatal(err)
	}
	var src strings.Builder
	src.WriteString("1")
	for i := 0; i < 300; i++ {
		src.WriteString("+2*(3+4)")
	}
	root, err := l.Parse(src.String())
	if err != nil {
		b.Fatal(err)
	}
	instances := root.CountAttrs()

	b.Run("static-visit", func(b *testing.B) {
		st := eval.NewStatic(a, eval.Hooks{})
		visits := a.NumVisits(root.Sym)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for v := 1; v <= visits; v++ {
				st.Visit(root, v)
			}
		}
		b.ReportMetric(float64(instances), "instances")
	})
	b.Run("dynamic-build-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := eval.NewDynamic(l.G, root, eval.Hooks{})
			if d.Run(); !d.Done() {
				b.Fatal("evaluator blocked")
			}
		}
		b.ReportMetric(float64(instances), "instances")
	})
	b.Run("combined-build-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := eval.NewCombined(a, root, eval.Hooks{})
			if c.Run(); !c.Done() {
				b.Fatal("evaluator blocked")
			}
		}
		b.ReportMetric(float64(instances), "instances")
	})
	b.Run("tree-clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if root.Clone() == nil {
				b.Fatal("nil clone")
			}
		}
	})
}

// BenchmarkEvaluators measures the reproduction's own evaluator
// throughput on the course program (attribute instances per second).
func BenchmarkEvaluators(b *testing.B) {
	l := experiments.Lang()
	src := workload.Generate(workload.Small())
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			root, err := l.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			st := eval.NewStatic(l.A, eval.Hooks{})
			if err := st.EvaluateTree(root); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			root, err := l.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			d := eval.NewDynamic(l.G, root, eval.Hooks{})
			d.Run()
			if !d.Done() {
				b.Fatal("blocked")
			}
		}
	})
}

// BenchmarkFleet measures what distributed evaluation costs over the
// shared-memory pool: the same tiny-pascal job compiled by a local
// 2-worker pool, by a coordinator splitting it across 2 fleet workers
// on the in-memory transport (serialization + session protocol, no
// sockets), and across 2 real HTTP loopback workers. NoCache keeps
// every op a full evaluation; the local/mem gap is the wire-codec tax
// and the mem/http gap is the network stack.
func BenchmarkFleet(b *testing.B) {
	job, err := pascal.MustNew().ClusterJob(workload.Generate(workload.Tiny()))
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultParallelOptions()
	opts.Workers = 2
	opts.NoCache = true
	ctx := context.Background()

	compileLoop := func(b *testing.B, pool *parallel.Pool, wantRemote bool) {
		b.Helper()
		res, err := pool.Compile(ctx, job, opts)
		if err != nil {
			b.Fatal(err)
		}
		if wantRemote && res.RemoteFrags == 0 {
			b.Fatal("fleet benchmark ran locally")
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(res.Program)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Compile(ctx, job, opts); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("local", func(b *testing.B) {
		pool := parallel.NewPool(parallel.PoolOptions{Workers: 2})
		defer pool.Close()
		compileLoop(b, pool, false)
	})

	fleetPool := func(b *testing.B, tr fleet.Transport, addrs []string) *parallel.Pool {
		b.Helper()
		client := fleet.NewClient(fleet.ClientOptions{
			Workers:   addrs,
			Transport: tr,
			// No background loop: the fleet is static and healthy.
			HealthInterval: 0,
		})
		client.Start()
		b.Cleanup(client.Stop)
		co := fleet.NewCoordinator(fleet.CoordinatorOptions{Client: client})
		pool := parallel.NewPool(parallel.PoolOptions{Workers: 2, Remote: co})
		b.Cleanup(pool.Close)
		return pool
	}

	b.Run("fleet-mem", func(b *testing.B) {
		mem := fleet.NewMemTransport()
		var addrs []string
		for i := 0; i < 2; i++ {
			w := fleet.NewWorker()
			w.Register(job.G, job.A, job.Lex)
			addr := fmt.Sprintf("w%d", i)
			mem.Add(addr, w)
			addrs = append(addrs, addr)
		}
		compileLoop(b, fleetPool(b, mem, addrs), true)
	})

	b.Run("fleet-http", func(b *testing.B) {
		var addrs []string
		for i := 0; i < 2; i++ {
			w := fleet.NewWorker()
			w.Register(job.G, job.A, job.Lex)
			srv := httptest.NewServer(w.Routes())
			b.Cleanup(srv.Close)
			addrs = append(addrs, srv.URL)
		}
		compileLoop(b, fleetPool(b, &fleet.HTTPTransport{}, addrs), true)
	})
}
